// Package dataflow is the function-summary-based interprocedural engine
// under execlint's clocktaint, maporder and lockset analyzers. It is
// built purely on go/ast + go/types (no x/tools dependency): the loader
// hands it parsed, type-checked packages; the engine indexes every
// function declaration under a stable symbolic ID, resolves static call
// edges through type information, and computes per-function transfer
// summaries by a bottom-up fixpoint over the call graph:
//
//   - taint summaries (taint.go): which results a function taints
//     unconditionally (it launders a source), which parameters flow into
//     which results, and which parameters reach a sink inside the
//     function — with a rendered source→call-chain→sink path on every
//     fact, so a diagnostic can show *how* a wall-clock value reached a
//     Result field three helpers away;
//   - order-effect summaries (effects.go): whether calling a function
//     from inside a map iteration makes the iteration order observable
//     (it appends to caller-visible slices, writes an io.Writer, or
//     charges the metric registry).
//
// The fixpoint is monotone over finite lattices (sets of parameter and
// result indices), so it terminates on any call graph including
// recursive and mutually recursive ones; iteration order is the sorted
// function-ID order, making summaries — and therefore every rendered
// path — deterministic.
//
// Known, deliberate precision limits: calls through function values and
// interface methods are treated as opaque (taint propagates
// conservatively from arguments to results but does not enter the
// callee), and function literals are analyzed as part of their enclosing
// function (sharing its environment) rather than as separate frames.
package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pkg is the engine's view of one loaded package. internal/lint converts
// its own package representation into this; the engine never touches the
// filesystem.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// Step is one hop of a rendered dataflow path.
type Step struct {
	Pos  token.Position
	Desc string
}

// Path is a source-first chain of steps: the first step names the
// source, the last the sink (or the current frontier while a fact is
// still being propagated).
type Path []Step

// String renders the path as "desc (file:line) -> desc (file:line)".
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(s.Desc)
		if s.Pos.IsValid() {
			fmt.Fprintf(&b, " (%s:%d)", s.Pos.Filename, s.Pos.Line)
		}
	}
	return b.String()
}

// maxPathSteps caps rendered paths. When a chain exceeds the cap the
// middle hop is dropped, keeping the source end and the sink frontier —
// the two ends are what a human needs to triage.
const maxPathSteps = 16

// extend returns p with s appended, respecting the cap. p is never
// mutated (facts are shared between lattice values).
func extend(p Path, s Step) Path {
	if len(p) >= maxPathSteps {
		out := make(Path, 0, maxPathSteps)
		out = append(out, p[:maxPathSteps/2]...)
		out = append(out, p[maxPathSteps/2+1:]...)
		return append(out, s)
	}
	out := make(Path, 0, len(p)+1)
	out = append(out, p...)
	return append(out, s)
}

// recvParam is the parameter index standing for a method receiver.
const recvParam = -1

// globalRoot marks state rooted at a package-level variable in effect
// summaries.
const globalRoot = -2

// localRoot marks state rooted at a function-local variable.
const localRoot = -3

// Func is one indexed function declaration.
type Func struct {
	ID   string
	Pkg  *Pkg
	Decl *ast.FuncDecl
	Obj  *types.Func // nil when type checking failed for the declaration

	// Source is set when the declaration carries a //lint:source
	// annotation in its doc comment: its results are treated as tainted
	// at every call site.
	Source     bool
	SourceDesc string
}

// name returns the function's display name ("pkg.Fn" or "pkg.(T).M"),
// short enough for path steps.
func (f *Func) name() string {
	short := f.Pkg.Path
	if i := strings.LastIndexByte(short, '/'); i >= 0 {
		short = short[i+1:]
	}
	if f.Decl.Recv != nil && len(f.Decl.Recv.List) == 1 {
		if tn := recvTypeName(f.Decl.Recv.List[0].Type); tn != "" {
			return short + "." + tn + "." + f.Decl.Name.Name
		}
	}
	return short + "." + f.Decl.Name.Name
}

// Engine holds the indexed program and caches summaries.
type Engine struct {
	pkgs  []*Pkg
	funcs map[string]*Func
	ids   []string // sorted, the deterministic iteration order

	flows map[string]map[int]map[int]bool // ParamFlows cache
}

// New indexes the given packages. Packages with partial type information
// are accepted; unresolved calls degrade to conservative propagation.
func New(pkgs []*Pkg) *Engine {
	e := &Engine{pkgs: pkgs, funcs: map[string]*Func{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				var obj *types.Func
				if pkg.Info != nil {
					obj, _ = pkg.Info.Defs[fd.Name].(*types.Func)
				}
				id := ""
				if obj != nil {
					id = FuncID(obj)
				}
				if id == "" {
					id = pkg.Path + "." + astFuncID(fd)
				}
				f := &Func{ID: id, Pkg: pkg, Decl: fd, Obj: obj}
				f.Source, f.SourceDesc = sourceAnnotation(fd, f)
				e.funcs[id] = f
			}
		}
	}
	e.ids = make([]string, 0, len(e.funcs))
	for id := range e.funcs {
		e.ids = append(e.ids, id)
	}
	sort.Strings(e.ids)
	return e
}

// Funcs returns the number of indexed functions (used by tests).
func (e *Engine) Funcs() int { return len(e.funcs) }

// Each calls fn for every indexed function in sorted-ID order.
func (e *Engine) Each(fn func(*Func)) {
	for _, id := range e.ids {
		fn(e.funcs[id])
	}
}

// ExtendPath is the exported form of extend: it returns p with s
// appended, respecting the path-length cap, without mutating p.
func ExtendPath(p Path, s Step) Path { return extend(p, s) }

// FuncName returns the short display name of an indexed function
// ("pkg.Fn" or "pkg.T.M").
func FuncName(f *Func) string { return f.name() }

// Lookup returns the indexed function for a resolved *types.Func, or nil
// when the callee is outside the loaded program.
func (e *Engine) Lookup(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return e.funcs[FuncID(obj)]
}

// FuncID renders the stable symbolic ID of a function: "pkg/path.Fn" for
// package-level functions, "pkg/path.(T).M" for methods. IDs survive
// re-type-checking (object identity does not: the loader checks a
// package once as an import and once as the analyzed package).
func FuncID(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return "" // universe-scope methods like error.Error
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		switch n := t.(type) {
		case *types.Named:
			return pkg.Path() + ".(" + n.Obj().Name() + ")." + fn.Name()
		default:
			return "" // receiver on a type parameter or unnamed type
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// astFuncID is the fallback ID when the declaration did not type-check.
func astFuncID(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if tn := recvTypeName(fd.Recv.List[0].Type); tn != "" {
			return "(" + tn + ")." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// recvTypeName unwraps *T, T[P] receiver expressions to the type name.
func recvTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// sourceAnnotation reports whether the declaration's doc comment carries
// a //lint:source directive.
func sourceAnnotation(fd *ast.FuncDecl, f *Func) (bool, string) {
	if fd.Doc == nil {
		return false, ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == "//lint:source" || strings.HasPrefix(text, "//lint:source ") {
			return true, f.name() + " (annotated //lint:source)"
		}
	}
	return false, ""
}

// Callee statically resolves the callee of call. obj is the resolved
// function or method (nil for function values, interface dynamic
// dispatch with no type info, conversions and builtins); fn is the
// indexed declaration when the callee lives in the loaded program; recv
// is the receiver expression for method calls.
func (e *Engine) Callee(pkg *Pkg, call *ast.CallExpr) (obj *types.Func, fn *Func, recv ast.Expr) {
	if pkg.Info == nil {
		return nil, nil, nil
	}
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = pkg.Info.Uses[f.Sel].(*types.Func)
		if obj != nil {
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				recv = f.X
			}
		}
	}
	if obj != nil {
		// Interface methods have no body; treat them as opaque rather
		// than resolving to nothing.
		fn = e.funcs[FuncID(obj)]
	}
	return obj, fn, recv
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// paramObjects maps each parameter (and receiver) object of fn to its
// index. It also returns the named-result objects keyed to result
// indices.
func paramObjects(pkg *Pkg, fd *ast.FuncDecl) (params map[types.Object]int, results map[types.Object]int, nResults int) {
	params = map[types.Object]int{}
	results = map[types.Object]int{}
	if pkg.Info == nil {
		return params, results, 0
	}
	def := func(id *ast.Ident) types.Object {
		if id == nil || id.Name == "_" {
			return nil
		}
		return pkg.Info.Defs[id]
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := def(fd.Recv.List[0].Names[0]); obj != nil {
			params[obj] = recvParam
		}
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := def(name); obj != nil {
				params[obj] = i
			}
			i++
		}
	}
	if fd.Type.Results != nil {
		j := 0
		for _, field := range fd.Type.Results.List {
			if len(field.Names) == 0 {
				j++
				continue
			}
			for _, name := range field.Names {
				if obj := def(name); obj != nil {
					results[obj] = j
				}
				j++
			}
		}
		nResults = j
	}
	return params, results, nResults
}

// rootOf walks an expression to the base identifier carrying its state
// and classifies it: a parameter/receiver index, globalRoot for
// package-level variables, or localRoot (with the object, so callers can
// compare declaration positions against loop extents). ok is false when
// no single base variable exists (function results, literals).
func rootOf(pkg *Pkg, params map[types.Object]int, expr ast.Expr) (root int, obj types.Object, ok bool) {
	for {
		switch x := expr.(type) {
		case *ast.ParenExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.SelectorExpr:
			// A package-qualified identifier is itself a global.
			if id, isIdent := x.X.(*ast.Ident); isIdent && pkg.Info != nil {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					if vo, isVar := pkg.Info.Uses[x.Sel].(*types.Var); isVar {
						return globalRoot, vo, true
					}
					return 0, nil, false
				}
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return 0, nil, false
			}
			expr = x.X
		case *ast.Ident:
			if pkg.Info == nil {
				return 0, nil, false
			}
			o := pkg.Info.Uses[x]
			if o == nil {
				o = pkg.Info.Defs[x]
			}
			if o == nil {
				return 0, nil, false
			}
			if idx, isParam := params[o]; isParam {
				return idx, o, true
			}
			if v, isVar := o.(*types.Var); isVar {
				if v.Parent() != nil && v.Parent().Parent() == types.Universe {
					return globalRoot, o, true // package scope
				}
				return localRoot, o, true
			}
			return 0, nil, false
		default:
			return 0, nil, false
		}
	}
}
