package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file extends the summary engine with the two concurrency facts the
// race-freedom analyzers need:
//
//   - goroutine-spawn summaries: a `go` statement creates an ownership
//     domain — the set of variables that escape into the new goroutine —
//     and carries the goroutine's completion edges (reusing the
//     completion-edge discovery goleak is built on);
//   - happens-before orderings: the consumer-side operations that order a
//     goroutine's effects before the observer — wg.Wait, a channel
//     receive (including range-over-channel), and mutex Lock/Unlock.
//
// Both are computed by the same bottom-up fixpoint over the call graph as
// taint and completion summaries, so `launch(&wg, slots)` three helpers
// deep still reports a spawn capturing the caller's slots, and a
// `join(&wg)` helper still counts as the caller's wg.Wait. Summaries are
// re-rooted at each call site's arguments; like completion summaries
// they keep the original site's Pos/Desc so recursion converges, while
// the Site* forms expose the position *in the analyzed body* (`At`) so
// analyzers can reason lexically about spawn → access → join order.

// OrderKind classifies a happens-before edge as seen from the observer
// (consumer) side.
type OrderKind string

const (
	// OrderWait: sync.WaitGroup.Wait — everything the counted goroutines
	// did before their Done is visible after Wait returns.
	OrderWait OrderKind = "wg.Wait"
	// OrderRecv: a channel receive or range-over-channel — the sender's
	// (or closer's) prior writes are visible to the receiver.
	OrderRecv OrderKind = "recv"
	// OrderLock / OrderUnlock: sync.Mutex/RWMutex Lock and Unlock — a
	// release ordered before the next acquire of the same mutex.
	OrderLock   OrderKind = "lock"
	OrderUnlock OrderKind = "unlock"
)

// Ordering is one happens-before edge a function performs, as seen by
// its callers. Root is the parameter index carrying the
// WaitGroup/channel/mutex (recvParam, globalRoot or localRoot like
// completion roots).
type Ordering struct {
	Kind OrderKind
	Desc string
	Pos  token.Position
	Root int
}

// SiteOrdering is an ordering observed inside a concrete body. At is the
// position in that body (the operation itself, or the call site for
// edges inherited from a callee); RootObj is the variable object rooting
// the edge, nil when no single variable roots it.
type SiteOrdering struct {
	Ordering
	At      token.Pos
	RootObj types.Object
}

// Orderings computes happens-before summaries for every indexed function
// by bottom-up fixpoint, so a join helper that calls wg.Wait on a
// parameter counts as the caller's join.
func (e *Engine) Orderings() map[string][]Ordering {
	sums := map[string][]Ordering{}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			f := e.funcs[id]
			params, _, _ := paramObjects(f.Pkg, f.Decl)
			var next []Ordering
			seen := map[string]bool{}
			for _, so := range e.BodyOrderings(f.Pkg, params, f.Decl.Body, sums) {
				k := string(so.Kind) + "|" + so.Pos.String() + "|" + so.Desc
				if !seen[k] {
					seen[k] = true
					next = append(next, so.Ordering)
				}
			}
			sort.Slice(next, func(i, j int) bool {
				if next[i].Pos.Offset != next[j].Pos.Offset {
					return next[i].Pos.Offset < next[j].Pos.Offset
				}
				return next[i].Desc < next[j].Desc
			})
			if len(next) > len(sums[id]) {
				sums[id] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// BodyOrderings returns the happens-before edges of one statement
// subtree, including those reached through calls into summarized
// functions.
func (e *Engine) BodyOrderings(pkg *Pkg, params map[types.Object]int, body ast.Node, sums map[string][]Ordering) []SiteOrdering {
	var out []SiteOrdering
	if body == nil {
		return nil
	}
	add := func(at token.Pos, o Ordering, rootExpr ast.Expr) {
		root, obj := localRoot, types.Object(nil)
		if rootExpr != nil {
			if r, ro, ok := rootOf(pkg, params, rootExpr); ok {
				root, obj = r, ro
			}
		}
		o.Root = root
		out = append(out, SiteOrdering{Ordering: o, At: at, RootObj: obj})
	}
	pos := func(n ast.Node) token.Position { return pkg.Fset.Position(n.Pos()) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				add(x.Pos(), Ordering{Kind: OrderRecv, Desc: "receives from " + exprString(x.X), Pos: pos(x)}, x.X)
			}
		case *ast.RangeStmt:
			if t := typeOf(pkg, x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					add(x.Pos(), Ordering{Kind: OrderRecv, Desc: "ranges over channel " + exprString(x.X), Pos: pos(x)}, x.X)
				}
			}
		case *ast.CallExpr:
			obj, callee, recv := e.Callee(pkg, x)
			switch {
			case obj != nil && IsWaitGroupWait(obj):
				add(x.Pos(), Ordering{Kind: OrderWait, Desc: exprString(recv) + ".Wait()", Pos: pos(x)}, recv)
			case obj != nil && isMutexMethod(obj, "Lock"):
				add(x.Pos(), Ordering{Kind: OrderLock, Desc: exprString(recv) + ".Lock()", Pos: pos(x)}, recv)
			case obj != nil && isMutexMethod(obj, "Unlock"):
				add(x.Pos(), Ordering{Kind: OrderUnlock, Desc: exprString(recv) + ".Unlock()", Pos: pos(x)}, recv)
			case callee != nil && sums != nil:
				for _, o := range sums[callee.ID] {
					add(x.Pos(), o, rerootExpr(o.Root, x, recv))
				}
			}
		}
		return true
	})
	return out
}

// GoSpawn is one goroutine spawn a function performs — directly or
// through callees — as seen by its callers: which of the function's
// parameters escape into the goroutine's ownership domain, and the
// goroutine's completion edges (by which a caller can prove a join).
type GoSpawn struct {
	Desc        string
	Pos         token.Position
	Roots       []int // parameter indices captured by the goroutine
	Completions []Completion
}

// SiteSpawn is a spawn observed inside a concrete body. For direct `go`
// statements Stmt (and Lit, when the goroutine runs a function literal)
// are set and [At, End] spans the statement; for spawns inherited from a
// callee, At and End span the call expression and Stmt/Lit are nil.
type SiteSpawn struct {
	Desc        string
	Pos         token.Position
	At, End     token.Pos
	Stmt        *ast.GoStmt
	Lit         *ast.FuncLit
	RootObjs    []types.Object
	Completions []SiteCompletion
}

// Captures reports whether obj is in the spawn's ownership domain.
func (s *SiteSpawn) Captures(obj types.Object) bool {
	for _, o := range s.RootObjs {
		if o == obj {
			return true
		}
	}
	return false
}

// SpawnSummaries computes goroutine-spawn summaries for every indexed
// function by bottom-up fixpoint: recursive spawn helpers converge, and
// a spawn behind two layers of helpers still surfaces — re-rooted — at
// the outermost caller.
func (e *Engine) SpawnSummaries(compSums map[string][]Completion) map[string][]GoSpawn {
	sums := map[string][]GoSpawn{}
	for iter := 0; iter < 64; iter++ {
		changed := false
		for _, id := range e.ids {
			f := e.funcs[id]
			params, _, _ := paramObjects(f.Pkg, f.Decl)
			var next []GoSpawn
			seen := map[string]bool{}
			for _, ss := range e.BodySpawns(f.Pkg, params, f.Decl.Body, sums, compSums) {
				if seen[ss.Pos.String()+"|"+ss.Desc] {
					continue
				}
				seen[ss.Pos.String()+"|"+ss.Desc] = true
				g := GoSpawn{Desc: ss.Desc, Pos: ss.Pos}
				rootSeen := map[int]bool{}
				for _, o := range ss.RootObjs {
					if idx, isParam := params[o]; isParam && !rootSeen[idx] {
						rootSeen[idx] = true
						g.Roots = append(g.Roots, idx)
					}
				}
				sort.Ints(g.Roots)
				for _, c := range ss.Completions {
					g.Completions = append(g.Completions, c.Completion)
				}
				next = append(next, g)
			}
			sort.Slice(next, func(i, j int) bool {
				if next[i].Pos.Offset != next[j].Pos.Offset {
					return next[i].Pos.Offset < next[j].Pos.Offset
				}
				return next[i].Desc < next[j].Desc
			})
			if len(next) > len(sums[id]) {
				sums[id] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return sums
}

// BodySpawns returns the goroutine spawns of one statement subtree:
// direct `go` statements with their captured variables and completion
// edges, plus spawns inherited from summarized callees with their roots
// re-resolved at the call's arguments.
func (e *Engine) BodySpawns(pkg *Pkg, params map[types.Object]int, body ast.Node, sums map[string][]GoSpawn, compSums map[string][]Completion) []SiteSpawn {
	var out []SiteSpawn
	if body == nil {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			ss := SiteSpawn{
				Desc: "go " + exprString(x.Call.Fun),
				Pos:  pkg.Fset.Position(x.Pos()),
				At:   x.Pos(), End: x.End(),
				Stmt:     x,
				RootObjs: capturedVars(pkg, x),
			}
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				ss.Lit = lit
				ss.Completions = e.BodyCompletions(pkg, params, lit.Body, compSums)
			} else {
				// Re-rooting the call expression pairs a Done on a
				// *sync.WaitGroup argument with the spawner's WaitGroup.
				ss.Completions = e.BodyCompletions(pkg, params, x.Call, compSums)
			}
			out = append(out, ss)
		case *ast.CallExpr:
			_, callee, recv := e.Callee(pkg, x)
			if callee == nil || sums == nil {
				return true
			}
			for _, g := range sums[callee.ID] {
				ss := SiteSpawn{
					Desc: g.Desc,
					Pos:  g.Pos,
					At:   x.Pos(), End: x.End(),
				}
				for _, root := range g.Roots {
					if expr := rerootExpr(root, x, recv); expr != nil {
						if _, obj, ok := rootOf(pkg, params, expr); ok && obj != nil {
							ss.RootObjs = append(ss.RootObjs, obj)
						}
					}
				}
				for _, c := range g.Completions {
					sc := SiteCompletion{Completion: c}
					if expr := rerootExpr(c.Root, x, recv); expr != nil {
						if _, obj, ok := rootOf(pkg, params, expr); ok {
							sc.RootObj = obj
						}
					}
					ss.Completions = append(ss.Completions, sc)
				}
				out = append(out, ss)
			}
		}
		return true
	})
	return out
}

// rerootExpr maps a callee-relative root index to the expression carrying
// it at a concrete call site: the receiver, an argument, or nil for
// global/local roots (which do not re-root).
func rerootExpr(root int, call *ast.CallExpr, recv ast.Expr) ast.Expr {
	switch root {
	case recvParam:
		return recv
	case globalRoot, localRoot:
		return nil
	default:
		if root >= 0 && root < len(call.Args) {
			return call.Args[root]
		}
	}
	return nil
}

// capturedVars collects every variable object a `go` statement
// references — in the spawned call's arguments and, for literal
// goroutines, in the literal body — excluding variables declared inside
// the statement itself (the goroutine's own parameters and locals).
// This is the spawn's ownership domain.
func capturedVars(pkg *Pkg, gs *ast.GoStmt) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	ast.Inspect(gs, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info == nil {
			return true
		}
		obj := pkg.Info.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || seen[v] {
			return true
		}
		if v.Pos() >= gs.Pos() && v.Pos() < gs.End() {
			return true // declared inside the goroutine: not captured
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// LitParams maps the parameter objects of a function literal to their
// indices, for analyzers reasoning about goroutine-owned state handed in
// as arguments.
func LitParams(pkg *Pkg, lit *ast.FuncLit) map[types.Object]int {
	params := map[types.Object]int{}
	if pkg.Info == nil || lit.Type.Params == nil {
		return params
	}
	i := 0
	for _, field := range lit.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				params[obj] = i
			}
			i++
		}
	}
	return params
}

// RootObject resolves the base variable carrying an expression's state
// (unwrapping parens, *, &, indexing, slicing and field selection) — the
// exported form of the engine's internal root resolution, for analyzers
// that reason about ownership of concrete expressions. ok is false when
// no single base variable exists (function results, literals).
func RootObject(pkg *Pkg, params map[types.Object]int, expr ast.Expr) (types.Object, bool) {
	_, obj, ok := rootOf(pkg, params, expr)
	return obj, ok && obj != nil
}

// IsWaitGroupWait reports sync.WaitGroup.Wait.
func IsWaitGroupWait(fn *types.Func) bool {
	return fn.Name() == "Wait" && isWaitGroupMethod(fn)
}

// isMutexMethod reports a name method on sync.Mutex or sync.RWMutex.
func isMutexMethod(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	if n != "Mutex" && n != "RWMutex" {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
