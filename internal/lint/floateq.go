package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags ==/!= between floating-point expressions in the numeric
// kernels. Two independently computed energies (or matrix elements) agree
// only up to rounding, so exact comparison either works by accident or
// introduces convergence bugs that move with the optimization level.
//
// Comparison against a compile-time constant is exempt: `if conv == 0`
// (zero value as "unset" sentinel) and `if beta != 1` (skip-scaling fast
// path) compare against a value that was *assigned* verbatim, which is
// exact by IEEE-754 — and both idioms are load-bearing in this codebase.
// What the check forbids is comparing two computed values.
type FloatEq struct {
	// Packages are import-path suffixes the check applies to.
	Packages []string
}

// NewFloatEq returns the analyzer scoped to the numeric kernels.
func NewFloatEq() *FloatEq {
	return &FloatEq{Packages: []string{"internal/chem", "internal/linalg"}}
}

// Name implements Analyzer.
func (*FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (*FloatEq) Doc() string {
	return "==/!= between computed floating-point values; compare with a tolerance"
}

// AppliesTo implements Analyzer.
func (f *FloatEq) AppliesTo(pkgPath string) bool {
	for _, suffix := range f.Packages {
		if hasSuffixPath(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// Run implements Analyzer.
func (f *FloatEq) Run(pkg *Package) []Finding {
	if pkg.Info == nil {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, xok := pkg.Info.Types[be.X]
			y, yok := pkg.Info.Types[be.Y]
			if !xok || !yok {
				return true // type resolution failed; stay silent
			}
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			if x.Value != nil || y.Value != nil {
				return true // constant sentinel comparison, exact by construction
			}
			out = append(out, Finding{
				Pos:     pkg.Fset.Position(be.OpPos),
				Check:   f.Name(),
				Message: "floating-point equality between computed values; compare with a tolerance (math.Abs(a-b) <= eps)",
			})
			return true
		})
	}
	return out
}

// isFloat reports whether t's underlying type is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
