package lint

import "testing"

func TestAtomicDisciplineFixture(t *testing.T) {
	a := NewAtomicDiscipline()
	a.Packages = []string{"fixture/atomicdiscipline"}
	checkFixture(t, a, "atomicdiscipline")
}

// TestAtomicDisciplineRealTree pins the concurrency-bearing packages
// free of mixed plain/atomic access and typed-atomic copies. Any word
// the tree accesses through sync/atomic is accessed that way everywhere.
func TestAtomicDisciplineRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem", "internal/deque", "internal/ga", "internal/core", "internal/serve")
	findings := NewAtomicDiscipline().RunProgram(pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding on real tree: %s", f)
	}
}
