package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked package.
// Analyzers consume this; they never touch the filesystem themselves.
type Package struct {
	Path  string // import path, e.g. "execmodels/internal/core"
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, with comments

	// Info holds type information. Type checking is best-effort: when an
	// import cannot be resolved the affected expressions simply have no
	// recorded type and analyzers degrade gracefully rather than crash.
	Info       *types.Info
	TypeErrors []error
}

// Loader parses and type-checks packages of one module. It resolves
// module-internal imports by recursive parsing and standard-library
// imports through the stdlib source importer, so it needs neither
// pre-compiled export data nor any third-party dependency.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod ("" outside a module)
	ModPath string // module path from go.mod

	stdlib   types.Importer
	cache    map[string]*types.Package
	building map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir (or at
// dir itself when no go.mod is found, in which case only stdlib imports
// resolve).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:     token.NewFileSet(),
		cache:    map[string]*types.Package{},
		building: map[string]bool{},
	}
	l.stdlib = importer.ForCompiler(l.Fset, "source", nil)
	root, modPath, err := findModule(abs)
	if err == nil {
		l.ModRoot, l.ModPath = root, modPath
	}
	return l, nil
}

// findModule walks up from dir looking for go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// LoadDir loads the package in a single directory under the given import
// path. The path is what AppliesTo filters and ignore reporting see; for
// fixture tests it is arbitrary.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files}
	pkg.Info, pkg.TypeErrors = l.check(importPath, files)
	return pkg, nil
}

// Load resolves package patterns relative to dir. Supported patterns:
// "./..." (every package under dir), "dir/..." and plain directory paths
// like "./internal/core".
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	explicit := map[string]string{} // dir → the pattern that named it
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(abs, strings.TrimSuffix(rest, "/"))
			if err := walkGoDirs(root, add); err != nil {
				return nil, err
			}
			continue
		}
		d := filepath.Join(abs, pat)
		explicit[d] = pat
		add(d)
	}
	var pkgs []*Package
	for _, d := range dirs {
		if !hasGoFiles(d) {
			// A directory named outright must hold a package — a typo'd
			// path silently matching nothing would turn the lint gate off.
			if pat, ok := explicit[d]; ok {
				return nil, fmt.Errorf("lint: pattern %q matches no Go package (dir %s)", pat, d)
			}
			continue
		}
		pkg, err := l.LoadDir(d, l.importPathFor(d))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) string {
	if l.ModRoot == "" {
		return filepath.ToSlash(dir)
	}
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// walkGoDirs calls add for every directory under root that may hold a
// package, skipping testdata, hidden and vendor directories.
func walkGoDirs(root string, add func(string)) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		add(path)
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// parseDir parses the non-test Go files of dir in filename order (stable
// output requires stable input order).
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package best-effort and returns the filled Info.
func (l *Loader) check(importPath string, files []*ast.File) (*types.Info, []error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	// The returned error duplicates the last collected one; Check still
	// fills info for everything it managed to resolve.
	pkg, _ := conf.Check(importPath, l.Fset, files, info)
	if pkg != nil && !l.building[importPath] {
		l.cache[importPath] = pkg
	}
	return info, errs
}

// Import implements types.Importer: module-internal packages are loaded
// recursively from source; everything else goes to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.ModPath != "" && (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) {
		if l.building[path] {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		dir := filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")))
		files, err := l.parseDir(dir)
		if err != nil {
			return nil, err
		}
		l.building[path] = true
		defer delete(l.building, path)
		info := &types.Info{}
		var errs []error
		conf := types.Config{
			Importer: l,
			Error:    func(err error) { errs = append(errs, err) },
		}
		pkg, _ := conf.Check(path, l.Fset, files, info)
		if pkg == nil {
			return nil, fmt.Errorf("lint: cannot type-check %s: %v", path, errs)
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.stdlib.Import(path)
}
