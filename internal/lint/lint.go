// Package lint implements execlint, the repository's static-analysis
// suite. It enforces the invariants the execution-model comparison relies
// on but which ordinary tests cannot see:
//
//   - determinism: the simulation packages must not consult the global
//     math/rand source or the wall clock — every schedule must be
//     reproducible from a seed (the paper's model comparisons are
//     meaningless if a work-stealing run cannot be replayed).
//   - guardedby: struct fields annotated "// guarded by <mutex>" must only
//     be touched by methods that actually lock that mutex.
//   - lockbalance: a method that calls mu.Lock() without defer yet has
//     multiple return paths is one early return away from a deadlock.
//   - floateq: energies and matrix elements in the chemistry and linear
//     algebra kernels must be compared with tolerances, never ==/!=.
//
// Three further checks are interprocedural, built on the
// function-summary dataflow engine in the dataflow sub-package:
//
//   - clocktaint: wall-clock / global-rand values traced through helper
//     calls must not reach Result fields, obs registry charges or
//     exporters — the hole the syntactic determinism allowlist leaves
//     open;
//   - maporder: a range over a map whose body (directly or via calls)
//     appends to an outliving slice, writes an io.Writer, charges the
//     registry, or accumulates a float, makes map iteration order
//     observable and breaks byte-identical output;
//   - lockset: references to "// guarded by" fields must not escape
//     their critical section (return, global store, channel send,
//     goroutine capture).
//
// Three more turn the zero-alloc arena invariant and the executor
// lifecycle rules into compile-time proofs:
//
//   - allocfree: every call chain from a function annotated
//     //hotpath:allocfree is proved free of heap allocation — make/new,
//     composite literals, append growth, string building, interface
//     boxing, escaping closures, variadic packing and map writes are all
//     reported with a rendered root→call-chain→site path;
//   - goleak: every go statement in the executor packages must have a
//     statically visible completion edge (wg.Add/Done pairing, channel
//     close/send/receive, or context cancellation) so workers cannot
//     leak past wg.Wait;
//   - padcheck: struct types annotated //hotpath:padded must stay
//     cache-line-sized (a multiple of 64 bytes on gc/amd64) and keep
//     their atomics away from unrelated mutable fields (false sharing).
//
// Three more are static race-freedom proofs, built on the engine's
// goroutine-spawn and happens-before summaries (a go statement creates
// an ownership domain; wg.Wait, channel receive and mutex release create
// ordering edges):
//
//   - shareiso: values of types annotated //hotpath:isolated (per-worker
//     accumulator slots, scratch arenas, scheduler cursors) are written
//     only by their owning goroutine; spawner-side access after a
//     capturing go statement requires a proven happens-before edge, such
//     as the post-wg.Wait merge in the wall-clock executor;
//   - atomicdiscipline: a word accessed via sync/atomic anywhere must be
//     accessed atomically everywhere (pre-publication plain writes on
//     local state exempt), and typed atomics must never be copied as
//     values;
//   - ctxcancel: blocking operations reachable from the serving layer's
//     HTTP handlers must select on ctx.Done() or carry a deadline; bare
//     sends/receives and time.Sleep on request paths are findings.
//
// Everything is built on the standard library only (go/ast, go/parser,
// go/token, go/types); the module stays dependency-free.
//
// False positives are suppressed per line with
//
//	//lint:ignore <check> <reason>
//
// on the offending line or the line above. The reason is mandatory, and
// RunWithStale reports directives that no longer suppress anything.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"execmodels/internal/lint/dataflow"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos     token.Position
	Check   string // analyzer name, e.g. "determinism"
	Message string

	// Path is the rendered dataflow chain (source → call chain → sink)
	// for findings from the interprocedural analyzers; nil for the
	// syntactic checks. The driver and -json output surface it so a
	// multi-hop flow can be triaged without re-deriving the call chain.
	Path dataflow.Path
}

// String renders the finding in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// An Analyzer is one named check over a loaded package.
type Analyzer interface {
	// Name is the short identifier used in reports and //lint:ignore
	// directives.
	Name() string
	// Doc is a one-line description of what the check enforces.
	Doc() string
	// AppliesTo reports whether the analyzer should run on the package
	// with the given import path. Fixture tests bypass this and call Run
	// directly.
	AppliesTo(pkgPath string) bool
	// Run analyzes one package and returns its findings.
	Run(pkg *Package) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []Analyzer {
	return []Analyzer{
		NewDeterminism(),
		NewGuardedBy(),
		NewLockBalance(),
		NewFloatEq(),
		NewClockTaint(),
		NewMapOrder(),
		NewLockset(),
		NewAllocFree(),
		NewGoleak(),
		NewPadCheck(),
		NewShareIso(),
		NewAtomicDiscipline(),
		NewCtxCancel(),
	}
}

// Run applies the given analyzers to the given packages, honoring
// AppliesTo and //lint:ignore suppressions, and returns the surviving
// findings sorted by position. Per-package analyzers run package by
// package; ProgramAnalyzers run once over the whole package set so their
// call-graph summaries see helpers in other packages.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	findings, _ := run(pkgs, analyzers)
	return findings
}

// RunWithStale is Run plus suppression hygiene: the second return lists
// a "staleignore" finding for every //lint:ignore directive naming one
// of the selected analyzers that suppressed nothing this run — dead
// suppressions hide the next real finding on their line.
func RunWithStale(pkgs []*Package, analyzers []Analyzer) (findings, stale []Finding) {
	findings, directives := run(pkgs, analyzers)
	selected := map[string]bool{}
	for _, a := range analyzers {
		selected[a.Name()] = true
	}
	for _, d := range directives {
		if selected[d.check] && !*d.used {
			stale = append(stale, Finding{
				Pos:     d.pos,
				Check:   "staleignore",
				Message: fmt.Sprintf("//lint:ignore %s suppresses nothing — remove the directive or restate why it is needed", d.check),
			})
		}
	}
	SortFindings(stale)
	return findings, stale
}

func run(pkgs []*Package, analyzers []Analyzer) ([]Finding, []*ignoreDirective) {
	var out []Finding
	var directives []*ignoreDirective
	ignores := ignoreIndex{}
	for _, pkg := range pkgs {
		idx, all, malformed := collectIgnores(pkg)
		out = append(out, malformed...)
		directives = append(directives, all...)
		for file, byLine := range idx {
			ignores[file] = byLine
		}
	}
	keep := func(findings []Finding) {
		for _, f := range findings {
			if !ignores.suppresses(f) {
				out = append(out, f)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if _, program := a.(ProgramAnalyzer); program {
				continue
			}
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			keep(a.Run(pkg))
		}
	}
	for _, a := range analyzers {
		if pa, ok := a.(ProgramAnalyzer); ok {
			keep(pa.RunProgram(pkgs))
		}
	}
	SortFindings(out)
	return out, directives
}

// SortFindings orders findings by position, then check, then message —
// the canonical deterministic report order.
func SortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if out[i].Check != out[j].Check {
			return out[i].Check < out[j].Check
		}
		return out[i].Message < out[j].Message
	})
}

// hasSuffixPath reports whether pkgPath equals suffix or ends with
// "/"+suffix — the matching rule analyzers use to scope themselves to
// repository packages regardless of the module prefix.
func hasSuffixPath(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	n := len(pkgPath) - len(suffix)
	return n > 0 && pkgPath[n-1] == '/' && pkgPath[n:] == suffix
}
