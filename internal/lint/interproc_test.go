package lint

import (
	"strings"
	"testing"
)

// fixtureClockTaint returns the clocktaint analyzer scoped onto a
// fixture package (the defaults scope reporting to internal/* packages).
func fixtureClockTaint(pkgPath string) *ClockTaint {
	a := NewClockTaint()
	a.Packages = []string{pkgPath}
	return a
}

func TestClockTaintFixture(t *testing.T) {
	checkFixture(t, fixtureClockTaint("fixture/clocktaint"), "clocktaint")
}

func TestMapOrderFixture(t *testing.T) {
	a := NewMapOrder()
	a.Packages = []string{"fixture/maporder"}
	checkFixture(t, a, "maporder")
}

func TestLocksetFixture(t *testing.T) {
	checkFixture(t, NewLockset(), "lockset")
}

// TestClockTaintMultiHopPath pins the acceptance-criterion behavior: a
// flow whose source and sink are three calls apart renders the full
// source→call-chain→sink path, in order, on the finding.
func TestClockTaintMultiHopPath(t *testing.T) {
	pkg := loadFixture(t, "clocktaint")
	findings := fixtureClockTaint("fixture/clocktaint").Run(pkg)

	var hit *Finding
	for i, f := range findings {
		if strings.Contains(f.Message, "ScheduleCost") {
			hit = &findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no ScheduleCost finding; got %d findings", len(findings))
	}
	if len(hit.Path) < 4 {
		t.Fatalf("path has %d steps, want >= 4 (source, two hops, sink): %s", len(hit.Path), hit.Path)
	}
	rendered := hit.Path.String()
	order := []string{"time.Since", "clocktaint.sinceSeconds", "clocktaint.scale", "stored to"}
	last := -1
	for _, sub := range order {
		i := strings.Index(rendered, sub)
		if i < 0 {
			t.Fatalf("rendered path missing %q: %s", sub, rendered)
		}
		if i < last {
			t.Fatalf("rendered path has %q out of order: %s", sub, rendered)
		}
		last = i
	}
	for _, s := range hit.Path {
		if !s.Pos.IsValid() {
			t.Errorf("path step %q has no position", s.Desc)
		}
	}
}

// TestInterprocSuppression runs clocktaint through the driver: a
// //lint:ignore at the sink silences the whole interprocedural chain,
// and an unsuppressed sink in the same package still reports.
func TestInterprocSuppression(t *testing.T) {
	pkg := loadFixture(t, "taintignore")
	findings := Run([]*Package{pkg}, []Analyzer{fixtureClockTaint("fixture/taintignore")})

	if len(findings) != 1 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly 1 (storeLoud)", len(findings))
	}
	if f := findings[0]; f.Check != "clocktaint" || !strings.Contains(f.Message, "ScheduleCost") {
		t.Fatalf("unexpected finding: %s", f)
	}
}

// TestThirteenAnalyzers pins the suite composition and name stability —
// //lint:ignore directives and CI reference these names.
func TestThirteenAnalyzers(t *testing.T) {
	want := []string{"determinism", "guardedby", "lockbalance", "floateq", "clocktaint", "maporder", "lockset", "allocfree", "goleak", "padcheck", "shareiso", "atomicdiscipline", "ctxcancel"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name() != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name(), want[i])
		}
		if a.Doc() == "" {
			t.Errorf("%s has empty Doc", a.Name())
		}
	}
	for _, name := range []string{"clocktaint", "maporder", "lockset", "allocfree", "goleak", "shareiso", "atomicdiscipline", "ctxcancel"} {
		var found Analyzer
		for _, a := range all {
			if a.Name() == name {
				found = a
			}
		}
		if _, ok := found.(ProgramAnalyzer); !ok {
			t.Errorf("%s does not implement ProgramAnalyzer", name)
		}
	}
}
