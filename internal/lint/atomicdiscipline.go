package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// AtomicDiscipline enforces all-or-nothing atomicity on shared words: a
// field or package variable accessed through sync/atomic anywhere must be
// accessed atomically everywhere — one plain load beside an atomic.Add is
// a data race the happens-before reasoning cannot repair, and one the
// race detector only sees when a test happens to interleave it.
//
// Two rules:
//
//   - mixed access: every field/package var passed by address to an
//     old-style sync/atomic function (AddInt64, LoadInt64, ...) is
//     tracked program-wide; any plain (non-atomic) access to it in the
//     scoped packages is a finding. Accesses rooted at function-local
//     values are exempt — building a struct before publishing it is the
//     one legitimate plain-write window;
//   - typed atomics: an atomic.Int64/Uint64/Bool/Value/... may be
//     operated only through its methods and passed only by pointer.
//     Copying one as a value (assignment, argument, return, composite
//     literal) silently forks the counter.
//
// Known limit: a plain access in a package outside the scope below is not
// reported (the tracked-site collection is program-wide, the enforcement
// walk is scoped).
type AtomicDiscipline struct {
	// Packages is the enforcement scope, matched as import-path suffixes.
	Packages []string
}

// NewAtomicDiscipline returns the check scoped to the packages holding
// shared counters: the wall-clock executors, the serving layer, the PGAS
// substrate and the work-stealing deque.
func NewAtomicDiscipline() *AtomicDiscipline {
	return &AtomicDiscipline{Packages: []string{"internal/core", "internal/serve", "internal/ga", "internal/deque"}}
}

func (a *AtomicDiscipline) Name() string { return "atomicdiscipline" }
func (a *AtomicDiscipline) Doc() string {
	return "a field accessed via sync/atomic anywhere must be accessed atomically everywhere (pre-publication init exempt); typed atomics must never be copied as values"
}

// AppliesTo scopes enforcement to the concurrency-bearing packages.
func (a *AtomicDiscipline) AppliesTo(pkgPath string) bool {
	for _, p := range a.Packages {
		if hasSuffixPath(pkgPath, p) {
			return true
		}
	}
	return false
}

// Run analyzes a single package (fixture mode).
func (a *AtomicDiscipline) Run(pkg *Package) []Finding {
	return a.RunProgram([]*Package{pkg})
}

// atomicSite records where a word was first seen accessed atomically.
type atomicSite struct {
	pos token.Position
	fn  string
}

// RunProgram analyzes all packages together: atomic-use collection is
// program-wide, enforcement honors AppliesTo.
func (a *AtomicDiscipline) RunProgram(pkgs []*Package) []Finding {
	sites := map[string]atomicSite{}   // word key → first atomic access
	extents := map[string][]posRange{} // pkg path → atomic-call extents
	for _, pkg := range pkgs {
		a.collectAtomicUses(pkg, sites, extents)
	}

	var out []Finding
	for _, pkg := range pkgs {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		out = append(out, a.enforce(pkg, sites, extents[pkg.Path])...)
	}
	return out
}

// posRange is one half-open [lo, hi) position span.
type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if p >= r.lo && p < r.hi {
			return true
		}
	}
	return false
}

// collectAtomicUses records every word passed by address to an old-style
// sync/atomic function, and the call extents (so the atomic accesses
// themselves are not reported as plain ones).
func (a *AtomicDiscipline) collectAtomicUses(pkg *Package, sites map[string]atomicSite, extents map[string][]posRange) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := atomicPkgFunc(pkg, call)
			if fn == nil {
				return true
			}
			extents[pkg.Path] = append(extents[pkg.Path], posRange{call.Pos(), call.End()})
			addr, ok := unparenExpr(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if key := wordKey(pkg, addr.X); key != "" {
				if _, dup := sites[key]; !dup {
					sites[key] = atomicSite{pos: pkg.Fset.Position(call.Pos()), fn: fn.Name()}
				}
			}
			return true
		})
	}
}

// enforce reports plain accesses to tracked words and value copies of
// typed atomics in one package.
func (a *AtomicDiscipline) enforce(pkg *Package, sites map[string]atomicSite, extents []posRange) []Finding {
	var out []Finding
	dp := &dataflow.Pkg{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := dataflow.ParamsOf(dp, fd)
			out = append(out, a.enforceBody(pkg, dp, params, fd.Body, sites, extents)...)
		}
	}
	out = append(out, a.checkTypedCopies(pkg)...)
	return out
}

// enforceBody flags plain accesses to atomically-used words in one body.
func (a *AtomicDiscipline) enforceBody(pkg *Package, dp *dataflow.Pkg, params map[types.Object]int, body ast.Node, sites map[string]atomicSite, extents []posRange) []Finding {
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		key := wordKey(pkg, e)
		if key == "" {
			return true
		}
		site, tracked := sites[key]
		if !tracked || inRanges(extents, e.Pos()) {
			return true
		}
		if sel, isSel := e.(*ast.SelectorExpr); isSel {
			if isLocalPrePublication(pkg, params, sel.X) {
				return true // building the struct before it is shared
			}
		}
		pos := pkg.Fset.Position(e.Pos())
		out = append(out, Finding{
			Pos:   pos,
			Check: a.Name(),
			Message: fmt.Sprintf("plain access to %s, which is accessed atomically (atomic.%s at %s:%d) — mixed plain/atomic access on a shared word; use sync/atomic everywhere or keep plain writes before publication",
				key, site.fn, site.pos.Filename, site.pos.Line),
			Path: dataflow.Path{
				{Pos: site.pos, Desc: "atomic access to " + key + " (atomic." + site.fn + ")"},
				{Pos: pos, Desc: "plain access to " + key},
			},
		})
		return false
	})
	return out
}

// checkTypedCopies flags sync/atomic typed values (atomic.Int64, ...)
// used as values rather than operated through methods or passed by
// pointer.
func (a *AtomicDiscipline) checkTypedCopies(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			defer func() { stack = append(stack, n) }()
			e, ok := n.(ast.Expr)
			if !ok || !isTypedAtomicExpr(pkg, e) {
				return true
			}
			if len(stack) == 0 || safeAtomicContext(stack[len(stack)-1], e) {
				return true
			}
			pos := pkg.Fset.Position(e.Pos())
			out = append(out, Finding{
				Pos:   pos,
				Check: a.Name(),
				Message: fmt.Sprintf("typed atomic %s used as a value — operate it through its methods and pass it by pointer; a copy silently forks the counter",
					types.ExprString(e)),
			})
			return true
		})
	}
	return out
}

// isTypedAtomicExpr reports a use (not declaration) of an expression
// whose type is a named type from sync/atomic.
func isTypedAtomicExpr(pkg *Package, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		if _, isUse := pkg.Info.Uses[x]; !isUse {
			return false
		}
	case *ast.SelectorExpr:
		// Field or variable selection; the type check below decides.
	default:
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || !tv.IsValue() {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
}

// safeAtomicContext reports whether the parent node uses the typed atomic
// without copying it: a method/field selection on it, taking its address,
// or a dereference chain.
func safeAtomicContext(parent ast.Node, e ast.Expr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == e // receiver of .Load()/.Add(); field chains
	case *ast.UnaryExpr:
		return p.Op == token.AND
	case *ast.StarExpr, *ast.ParenExpr:
		return true
	case *ast.IndexExpr:
		return p.X == e
	}
	return false
}

// atomicPkgFunc resolves a call to an old-style package-level sync/atomic
// function (atomic.AddInt64 and friends), nil otherwise.
func atomicPkgFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return nil // typed-atomic method, governed by the copy rule
	}
	return fn
}

// wordKey renders the stable identity of an atomically-accessible word:
// "pkgpath.Type.field" for struct fields, "pkgpath.var" for package-level
// variables, "" for anything else (locals, call results). String keys
// survive the loader type-checking a package twice; object identity does
// not.
func wordKey(pkg *Package, e ast.Expr) string {
	switch x := unparenExpr(e).(type) {
	case *ast.SelectorExpr:
		selInfo, ok := pkg.Info.Selections[x]
		if !ok || selInfo.Kind() != types.FieldVal {
			return ""
		}
		field, ok := selInfo.Obj().(*types.Var)
		if !ok || field.Pkg() == nil {
			return ""
		}
		t := selInfo.Recv()
		for {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		return field.Pkg().Path() + "." + named.Obj().Name() + "." + field.Name()
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() == nil {
			return ""
		}
		if v.Parent() == nil || v.Parent().Parent() != types.Universe {
			return "" // not package-level
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// isLocalPrePublication reports whether the accessed struct is rooted at
// a function-local variable — the legitimate plain-write window between
// construction and publication. Parameters and receivers do not qualify:
// a *T handed in may already be shared.
func isLocalPrePublication(pkg *Package, params map[types.Object]int, base ast.Expr) bool {
	dp := &dataflow.Pkg{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info}
	obj, ok := dataflow.RootObject(dp, params, base)
	if !ok {
		return false
	}
	if _, isParam := params[obj]; isParam {
		return false
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return false
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return false // package-level
	}
	return true
}
