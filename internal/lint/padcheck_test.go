package lint

import "testing"

func TestPadCheckFixture(t *testing.T) { checkFixture(t, NewPadCheck(), "padcheck") }

// TestPadCheckRealTree: the wall-clock executors' padded per-worker
// state (padCell, dynSpan, atomicInt64Pad) must verify — this replaces
// the hand-written unsafe.Sizeof test that used to pin the layouts.
func TestPadCheckRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem", "internal/deque", "internal/ga", "internal/core")
	annotated := 0
	for _, pkg := range pkgs {
		findings := NewPadCheck().Run(pkg)
		for _, f := range findings {
			t.Errorf("padded type fails layout check: %s", f)
		}
	}
	// The check must actually have seen the core types; count the
	// annotations so a renamed directive cannot silently skip them.
	for _, pkg := range loadReal(t, "internal/core") {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if k, ok, _ := parseHotpath(c.Text); ok && k == "padded" {
						annotated++
					}
				}
			}
		}
	}
	if annotated < 3 {
		t.Errorf("found %d //hotpath:padded annotations in internal/core, want >= 3 (padCell, dynSpan, atomicInt64Pad)", annotated)
	}
}
