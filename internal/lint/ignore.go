package lint

import (
	"regexp"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	check  string
	reason string
}

// ignoreIndex maps file → line → directives active for that line.
type ignoreIndex map[string]map[int][]ignoreDirective

var ignoreRe = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(\S.*))?$`)

// collectIgnores scans every comment in the package for //lint:ignore
// directives. Malformed directives (missing check name or missing reason)
// are returned as findings themselves: a suppression without a written
// justification is exactly the silent exception this suite exists to
// prevent.
func collectIgnores(pkg *Package) (ignoreIndex, []Finding) {
	idx := ignoreIndex{}
	var malformed []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil || m[2] == "" || strings.TrimSpace(m[4]) == "" {
					malformed = append(malformed, Finding{
						Pos:     pos,
						Check:   "ignore",
						Message: "malformed directive: want //lint:ignore <check> <reason>",
					})
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]ignoreDirective{}
					idx[pos.Filename] = byLine
				}
				d := ignoreDirective{check: m[2], reason: strings.TrimSpace(m[4])}
				// A directive suppresses matching findings on its own line
				// (end-of-line comment) and on the line below (comment
				// above the statement).
				byLine[pos.Line] = append(byLine[pos.Line], d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
			}
		}
	}
	return idx, malformed
}

// suppresses reports whether a directive covers the finding.
func (idx ignoreIndex) suppresses(f Finding) bool {
	for _, d := range idx[f.Pos.Filename][f.Pos.Line] {
		if d.check == f.Check {
			return true
		}
	}
	return false
}
