package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. used is shared
// between the two lines the directive covers, so the stale-suppression
// report can tell whether the directive earned its keep during a run.
type ignoreDirective struct {
	check  string
	reason string
	pos    token.Position
	used   *bool
}

// ignoreIndex maps file → line → directives active for that line.
type ignoreIndex map[string]map[int][]*ignoreDirective

var ignoreRe = regexp.MustCompile(`^//lint:ignore(\s+(\S+))?(\s+(\S.*))?$`)

// parseIgnore parses one comment's text as a //lint:ignore directive.
// ok is false when the comment is not a directive at all; malformed is
// true when it starts like one but is missing the check name or the
// reason. This is a pure function so it can be fuzzed directly.
func parseIgnore(text string) (check, reason string, ok, malformed bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "//lint:ignore") {
		return "", "", false, false
	}
	m := ignoreRe.FindStringSubmatch(text)
	if m == nil || m[2] == "" || strings.TrimSpace(m[4]) == "" {
		return "", "", false, true
	}
	return m[2], strings.TrimSpace(m[4]), true, false
}

// hotpathKinds are the valid //hotpath: annotation kinds:
//
//	//hotpath:allocfree — on a function: the allocfree check proves
//	  every call chain from it allocation-free;
//	//hotpath:padded — on a struct type: the padcheck check proves its
//	  size is a cache-line multiple and its atomics are isolated;
//	//hotpath:isolated — on a struct type: the shareiso check proves
//	  values of it are written only by their owning goroutine, with
//	  cross-goroutine reads ordered by a proven happens-before edge.
var hotpathKinds = map[string]bool{"allocfree": true, "padded": true, "isolated": true}

// parseHotpath parses one comment's text as a //hotpath:<kind> directive
// (optional trailing free-form note allowed). ok is false when the
// comment is not a hotpath directive; malformed is true when the kind is
// missing or unknown — a misspelled annotation would otherwise silently
// unprotect a hot path. Pure, for fuzzing.
func parseHotpath(text string) (kind string, ok, malformed bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "//hotpath:") {
		return "", false, false
	}
	rest := strings.TrimPrefix(text, "//hotpath:")
	kind = rest
	if i := strings.IndexFunc(rest, func(r rune) bool { return r == ' ' || r == '\t' }); i >= 0 {
		kind = rest[:i]
	}
	if !hotpathKinds[kind] {
		return kind, false, true
	}
	return kind, true, false
}

// collectIgnores scans every comment in the package for //lint:ignore
// and //hotpath: directives. Malformed directives (missing check name,
// missing reason, unknown hotpath kind) are returned as findings
// themselves: a suppression or annotation with a typo is exactly the
// silent exception this suite exists to prevent. all lists each
// well-formed ignore directive once, for stale-suppression reporting.
func collectIgnores(pkg *Package) (idx ignoreIndex, all []*ignoreDirective, malformed []Finding) {
	idx = ignoreIndex{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				pos := pkg.Fset.Position(c.Pos())
				if kind, ok, bad := parseHotpath(text); bad {
					malformed = append(malformed, Finding{
						Pos:     pos,
						Check:   "hotpath",
						Message: "malformed //hotpath: directive (kind " + strings.TrimSpace(kind) + "): want //hotpath:allocfree, //hotpath:padded or //hotpath:isolated",
					})
					continue
				} else if ok {
					continue
				}
				check, reason, ok, bad := parseIgnore(text)
				if bad {
					malformed = append(malformed, Finding{
						Pos:     pos,
						Check:   "ignore",
						Message: "malformed directive: want //lint:ignore <check> <reason>",
					})
					continue
				}
				if !ok {
					continue
				}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					idx[pos.Filename] = byLine
				}
				d := &ignoreDirective{check: check, reason: reason, pos: pos, used: new(bool)}
				all = append(all, d)
				// A directive suppresses matching findings on its own line
				// (end-of-line comment) and on the line below (comment
				// above the statement).
				byLine[pos.Line] = append(byLine[pos.Line], d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
			}
		}
	}
	return idx, all, malformed
}

// suppresses reports whether a directive covers the finding, marking
// the directive used when it does.
func (idx ignoreIndex) suppresses(f Finding) bool {
	hit := false
	for _, d := range idx[f.Pos.Filename][f.Pos.Line] {
		if d.check == f.Check {
			*d.used = true
			hit = true
		}
	}
	return hit
}

// hasHotpathDoc reports whether a doc comment group carries a
// //hotpath:<kind> directive.
func hasHotpathDoc(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if k, ok, _ := parseHotpath(strings.TrimSpace(c.Text)); ok && k == kind {
			return true
		}
	}
	return false
}
