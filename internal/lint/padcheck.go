package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// PadCheck verifies struct types annotated //hotpath:padded: their
// gc/amd64 size must be a multiple of the 64-byte cache line (adjacent
// array elements must not share lines — the false-sharing regression the
// wall-clock executors pad against), and atomic fields must not share a
// cache line with another named field (an atomic CAS next to a mutable
// cursor invalidates the neighbor's line on every bump). It replaces the
// hand-written unsafe.Sizeof tests.
type PadCheck struct{}

// NewPadCheck returns the check.
func NewPadCheck() *PadCheck { return &PadCheck{} }

func (p *PadCheck) Name() string { return "padcheck" }
func (p *PadCheck) Doc() string {
	return "//hotpath:padded structs must be a multiple of 64 bytes and keep atomics off shared cache lines (gc/amd64 layout)"
}

// AppliesTo is true everywhere; the check self-scopes through the
// //hotpath:padded annotations.
func (p *PadCheck) AppliesTo(pkgPath string) bool { return true }

// Run analyzes one package.
func (p *PadCheck) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasHotpathDoc(doc, "padded") {
					continue
				}
				out = append(out, p.checkType(pkg, ts)...)
			}
		}
	}
	return out
}

// checkType verifies one annotated type.
func (p *PadCheck) checkType(pkg *Package, ts *ast.TypeSpec) []Finding {
	pos := pkg.Fset.Position(ts.Name.Pos())
	obj := pkg.Info.Defs[ts.Name]
	if obj == nil {
		return nil // no type info; the loader already reported errors
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return []Finding{{
			Pos:     pos,
			Check:   p.Name(),
			Message: "//hotpath:padded applies only to struct types; " + ts.Name.Name + " is " + obj.Type().Underlying().String(),
		}}
	}
	var out []Finding
	size, fields := dataflow.StructLayout(st)
	if size%dataflow.CacheLine != 0 {
		pad := dataflow.CacheLine - size%dataflow.CacheLine
		out = append(out, Finding{
			Pos:   pos,
			Check: p.Name(),
			Message: fmt.Sprintf("%s: size %d bytes is not a multiple of the %d-byte cache line — adjacent array elements will share lines (add %d bytes of padding)",
				ts.Name.Name, size, dataflow.CacheLine, pad),
		})
	}
	for i, f := range fields {
		if !f.Atomic {
			continue
		}
		lineStart := (f.Offset / dataflow.CacheLine) * dataflow.CacheLine
		lineEnd := ((f.Offset+f.Size-1)/dataflow.CacheLine + 1) * dataflow.CacheLine
		for j, g := range fields {
			if i == j || g.Blank || g.Size == 0 {
				continue
			}
			if g.Offset < lineEnd && g.Offset+g.Size > lineStart {
				out = append(out, Finding{
					Pos:   pos,
					Check: p.Name(),
					Message: fmt.Sprintf("%s: atomic field %s (offset %d) shares a cache line with %s (offset %d) — pad between them to stop false sharing",
						ts.Name.Name, f.Name, f.Offset, g.Name, g.Offset),
				})
			}
		}
	}
	return out
}
