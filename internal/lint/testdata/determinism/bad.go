package determinism

import (
	"math/rand"
	"time"
)

// schedule is seeded-bad code: every call draws from the process-global
// RNG and the host clock, so no run can be replayed.
func schedule(n int) []int {
	p := rand.Perm(n) // want `global rand\.Perm`
	if rand.Float64() < 0.5 { // want `global rand\.Float64`
		p[0] = rand.Intn(n) // want `global rand\.Intn`
	}
	rand.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] }) // want `global rand\.Shuffle`
	return p
}

func tick() int64 {
	return time.Now().UnixNano() // want `bare time\.Now`
}

func age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `bare time\.Since`
}
