package determinism

import (
	"math/rand"
	"time"
)

// seeded plumbs an explicit *rand.Rand: reproducible, not flagged.
func seeded(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := rng.Perm(n)
	if rng.Float64() < 0.5 {
		out[0] = rng.Intn(n)
	}
	return out
}

// startStopwatch matches the allowlist: sanctioned timing wrapper.
func startStopwatch() time.Time { return time.Now() }

// elapsed matches the allowlist too.
func elapsed(t0 time.Time) time.Duration { return time.Since(t0) }

// uses consumes the helpers so the fixture type-checks without unused
// diagnostics from vet-style tooling.
func uses() {
	_ = seeded(1, 4)
	_ = elapsed(startStopwatch())
	_ = schedule(3)
	_ = tick()
}
