// Package hotpathbad is an execlint fixture: malformed //hotpath:
// directives are diagnosed, never silently ignored — a typo in the kind
// would otherwise unprotect a hot path.
package hotpathbad

//hotpath:fast
func mystery() {}

// wellFormed stays quiet: the kind is known.
//
//hotpath:allocfree
func wellFormed() {}
