// Package lockset is an execlint fixture: references to "// guarded by"
// fields must not escape their critical section.
package lockset

import "sync"

// Buf is the annotated struct under test.
type Buf struct {
	mu    sync.Mutex
	items []int         // guarded by mu
	n     int           // guarded by mu
	done  chan struct{} // guarded by mu
}

var leaked []int

// Items hands the guarded slice itself to the caller.
func (b *Buf) Items() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.items // want `reference to items \(guarded by mu\) is returned`
}

// Snapshot returns a copy: the guarded backing array stays private.
func (b *Buf) Snapshot() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]int, len(b.items))
	copy(out, b.items)
	return out // clean: a fresh copy escapes, not the guarded state
}

// Head returns a subslice, which shares the guarded backing array.
func (b *Buf) Head() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.items[:1] // want `reference to items \(guarded by mu\) is returned`
}

// CountPtr escapes the address of a guarded value field.
func (b *Buf) CountPtr() *int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return &b.n // want `reference to n \(guarded by mu\) is returned`
}

// Len returns the guarded int by value: a copy, not a reference.
func (b *Buf) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n // clean: value copy
}

// Leak stores the guarded slice into a package-level variable.
func (b *Buf) Leak() {
	b.mu.Lock()
	leaked = b.items // want `reference to items \(guarded by mu\) is stored to package-level leaked`
	b.mu.Unlock()
}

// Send ships the guarded slice to whoever reads the channel.
func (b *Buf) Send(ch chan []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch <- b.items // want `reference to items \(guarded by mu\) is sent on a channel`
}

// Async touches guarded state from a goroutine that runs after the
// method's critical section has ended.
func (b *Buf) Async() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		_ = b.items // want `reference to items \(guarded by mu\) is captured by a goroutine`
	}()
}

// pass is an identity-shaped helper: it hands its argument back.
func pass(s []int) []int { return s }

// Laundered escapes the guarded slice through the helper.
func (b *Buf) Laundered() []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return pass(b.items) // want `reference to items \(guarded by mu\) is returned through pass`
}
