package floateq

import "math"

const eps = 1e-12

// sentinel compares against the constant zero value ("option unset"):
// exact by IEEE-754, idiomatic, allowed.
func sentinel(conv float64) bool { return conv == 0 }

// skipScale is the BLAS beta != 1 fast path: also a constant comparison.
func skipScale(beta float64) bool { return beta != 1 }

// namedConst compares against a declared constant.
func namedConst(x float64) bool { return x == eps }

// tolerance is the sanctioned way to compare computed values.
func tolerance(a, b float64) bool { return math.Abs(a-b) <= eps }

// ints are exact; integer equality is out of scope.
func ints(a, b int) bool { return a == b }

func useClean() {
	_ = sentinel(0)
	_ = skipScale(1)
	_ = namedConst(eps)
	_ = tolerance(1, 1)
	_ = ints(1, 2)
}
