package floateq

import "math"

// converged compares two computed energies exactly: agreement up to
// rounding only happens by accident.
func converged(e1, e2 float64) bool {
	return e1 == e2 // want `floating-point equality between computed values`
}

func mismatch(x, y float64) bool {
	return math.Sqrt(x) != y // want `floating-point equality between computed values`
}

func viaVar(a []float64, i int) bool {
	s := a[i] * 2
	return s == a[0] // want `floating-point equality between computed values`
}

func use() {
	_ = converged(1, 2)
	_ = mismatch(4, 2)
	_ = viaVar([]float64{1, 2}, 1)
}
