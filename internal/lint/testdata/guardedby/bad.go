package guardedby

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int // guarded by mu
	hits int // guarded by mu
}

// Bad reads n without ever touching the mutex.
func (c *counter) Bad() int {
	return c.n // want `counter\.Bad accesses n \(guarded by mu\) without locking mu`
}

// WriteBoth locks nothing and touches both guarded fields.
func (c *counter) WriteBoth() {
	c.n++    // want `counter\.WriteBoth accesses n`
	c.hits++ // want `counter\.WriteBoth accesses hits`
}

type orphan struct {
	x int // guarded by lock; want `guard "lock" named in annotation is not a field of orphan`
}

func use() {
	var c counter
	c.WriteBoth()
	_ = c.Bad()
	_ = orphan{}
}
