package guardedby

import "sync"

type gauge struct {
	mu  sync.RWMutex
	val float64 // guarded by mu
}

// Set locks the guard: clean.
func (g *gauge) Set(v float64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// Get read-locks the guard: also clean.
func (g *gauge) Get() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// resetLocked relies on the *Locked naming convention.
func (g *gauge) resetLocked() { g.val = 0 }

// drain is called with mu held by the flush path.
func (g *gauge) drain() float64 { return g.val }

func useClean() {
	var g gauge
	g.Set(1)
	_ = g.Get()
	g.resetLocked()
	_ = g.drain()
}
