package ignore

import "math/rand"

// jitter demonstrates a sanctioned suppression: directive above the line.
func jitter() float64 {
	//lint:ignore determinism fixture demonstrating a justified suppression
	return rand.Float64()
}

// inline demonstrates the end-of-line form.
func inline() int {
	return rand.Int() //lint:ignore determinism fixture inline suppression
}

// loud stays flagged: no directive.
func loud() int {
	return rand.Intn(10)
}

// wrongCheck suppresses a different check, so determinism still fires.
func wrongCheck() float64 {
	//lint:ignore floateq reason that does not match the finding's check
	return rand.NormFloat64()
}

//lint:ignore determinism
var missingReason = 0

func use() {
	_ = jitter()
	_ = inline()
	_ = loud()
	_ = wrongCheck()
	_ = missingReason
}
