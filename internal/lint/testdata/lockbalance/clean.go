package lockbalance

import "sync"

type jar struct {
	mu sync.Mutex
	v  int
}

// deferred is the canonical safe shape.
func (j *jar) deferred(flag bool) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if flag {
		return j.v
	}
	return 0
}

// straightline has a single fall-through path: explicit Unlock is fine.
func (j *jar) straightline() {
	j.mu.Lock()
	j.v++
	j.mu.Unlock()
}

// closureUnlock defers the unlock inside a closure.
func (j *jar) closureUnlock(flag bool) int {
	j.mu.Lock()
	defer func() { j.mu.Unlock() }()
	if flag {
		return j.v
	}
	return -1
}

// oneReturn locks without defer but has only the single final return.
func (j *jar) oneReturn() int {
	j.mu.Lock()
	v := j.v
	j.mu.Unlock()
	return v
}

func useClean() {
	j := &jar{}
	_ = j.deferred(true)
	j.straightline()
	_ = j.closureUnlock(false)
	_ = j.oneReturn()
}
