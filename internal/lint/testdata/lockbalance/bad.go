package lockbalance

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	v  int
}

// branchy hand-unlocks on two return paths: one refactor away from a
// leaked lock.
func (b *box) branchy(flag bool) int {
	b.mu.Lock() // want `branchy: b\.mu\.Lock\(\) without defer b\.mu\.Unlock\(\) but 2 return paths`
	if flag {
		b.mu.Unlock()
		return 1
	}
	b.mu.Unlock()
	return 0
}

// reader does the same with a read lock.
func (b *box) reader(flag bool) int {
	b.rw.RLock() // want `reader: b\.rw\.RLock\(\) without defer b\.rw\.RUnlock\(\) but 2 return paths`
	if flag {
		b.rw.RUnlock()
		return b.v
	}
	b.rw.RUnlock()
	return 0
}

func use() {
	b := &box{}
	_ = b.branchy(true)
	_ = b.reader(false)
}
