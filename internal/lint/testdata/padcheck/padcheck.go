// Package padcheck is an execlint fixture: //hotpath:padded layout
// verdicts, computed on the gc/amd64 layout the check pins.
package padcheck

import "sync/atomic"

// good is exactly one cache line.
//
//hotpath:padded
type good struct {
	cursor int64
	_      [56]byte
}

// short is 16 bytes: adjacent array elements share cache lines.
//
//hotpath:padded
type short struct { // want `size 16 bytes is not a multiple of the 64-byte cache line`
	cursor int64
	limit  int64
}

// isolated keeps its atomic alone on its line.
//
//hotpath:padded
type isolated struct {
	count atomic.Int64
	_     [56]byte
	name  int64
	_     [56]byte
}

// shared parks a mutable cursor on the atomic's cache line.
//
//hotpath:padded
type shared struct { // want `atomic field count \(offset 0\) shares a cache line with cursor \(offset 8\)`
	count  atomic.Int64
	cursor int64
	_      [48]byte
}

// scalar is not a struct at all.
//
//hotpath:padded
type scalar int64 // want `//hotpath:padded applies only to struct types`
