// Package atomicdiscipline exercises the all-or-nothing atomicity rule:
// a word accessed via sync/atomic anywhere must be accessed atomically
// everywhere, and typed atomics must never be copied as values.
package atomicdiscipline

import "sync/atomic"

// counters mixes one atomically-maintained field with a cold plain one.
type counters struct {
	hits int64
	cold int64
}

// bump is the canonical atomic writer: it establishes hits as an
// atomic word program-wide.
func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

// mixedRead reads hits without sync/atomic — the race the check exists
// to catch.
func mixedRead(c *counters) int64 {
	return c.hits // want `mixed plain/atomic access`
}

// coldAccess touches only the never-atomic field. Clean.
func coldAccess(c *counters) int64 {
	c.cold++
	return c.cold
}

// prePublication builds a counters value locally before anything can
// share it — the one legitimate plain-write window. Clean.
func prePublication() *counters {
	var c counters
	c.hits = 0
	return &c
}

// globalHits is a package-level word maintained atomically...
var globalHits int64

func bumpGlobal() {
	atomic.AddInt64(&globalHits, 1)
}

// ...and read bare here.
func globalRead() int64 {
	return globalHits // want `mixed plain/atomic access`
}

// gauge wraps a typed atomic; methods and pointers are the only legal
// ways to touch it.
type gauge struct {
	v atomic.Int64
}

// load operates the typed atomic through its method. Clean.
func (g *gauge) load() int64 {
	return g.v.Load()
}

// reset copies a fresh atomic.Int64 over the live one — a value
// overwrite, not an atomic store.
func (g *gauge) reset() {
	g.v = atomic.Int64{} // want `typed atomic .* used as a value`
}

// snapshot returns the typed atomic by value, silently forking it.
func (g *gauge) snapshot() atomic.Int64 {
	return g.v // want `typed atomic .* used as a value`
}

// byPointer passes the typed atomic by pointer. Clean.
func byPointer(g *gauge) *atomic.Int64 {
	return &g.v
}
