// Package maporder is an execlint fixture: ranging over a map must not
// make the iteration order observable — directly or through helpers.
package maporder

import (
	"fmt"
	"io"
	"sort"

	"execmodels/internal/obs"
)

// collectUnsorted leaks map order into the returned slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is observable: unsorted append to keys`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the sanctioned idiom: collect, then sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // clean: keys are sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// printDirect writes stdout in map order.
func printDirect(m map[string]int) {
	for k, v := range m { // want `map iteration order is observable.*writes os\.Stdout`
		fmt.Println(k, v)
	}
}

// dump writes an io.Writer in map order.
func dump(w io.Writer, m map[string]string) {
	for k := range m { // want `map iteration order is observable.*writes w`
		io.WriteString(w, k)
	}
}

// emit is the helper the next case reaches the effect through.
func emit(out *[]string, s string) {
	*out = append(*out, s)
}

// collectViaHelper leaks map order through one call hop.
func collectViaHelper(m map[string]int) []string {
	var acc []string
	for k := range m { // want `map iteration order is observable: unsorted append to \*out`
		emit(&acc, k)
	}
	return acc
}

// fill appends into caller-visible state from inside the loop.
func fill(m map[string]int, out *[]string) {
	for k := range m { // want `unsorted append to \*out`
		*out = append(*out, k)
	}
}

// chargeAll charges the metric registry in map order; gauge adds are
// float additions, so the exported bytes depend on visit order.
func chargeAll(reg *obs.Registry, m map[string]float64) {
	for _, v := range m { // want `charges the metric registry`
		reg.Add("x_seconds", 0, v)
	}
}

// sumFloats accumulates a float across iterations: addition does not
// associate, so the low bits depend on visit order.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `float accumulation s`
		s += v
	}
	return s
}

// countEntries accumulates an int: associative, order-safe.
func countEntries(m map[string]int) int {
	n := 0
	for range m { // clean: integer addition associates
		n++
	}
	return n
}

// innerLocal appends only to a slice that dies inside the loop body.
func innerLocal(m map[string][]int) {
	for _, vs := range m { // clean: tmp does not outlive the iteration
		var tmp []int
		tmp = append(tmp, vs...)
		_ = tmp
	}
}

var _ = collectUnsorted
var _ = sortedKeys
var _ = printDirect
var _ = dump
var _ = collectViaHelper
var _ = fill
var _ = chargeAll
var _ = sumFloats
var _ = countEntries
var _ = innerLocal
