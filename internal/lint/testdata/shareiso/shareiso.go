// Package shareiso exercises the goroutine-ownership proof: values of
// //hotpath:isolated types may be written only by their owning
// goroutine, and spawner-side access after a capturing go statement
// needs a happens-before edge (wg.Wait matching the goroutine's Done, a
// channel receive matching its send/close, or one mutex on both sides).
package shareiso

import "sync"

// slot is one worker's padded accumulator, owned by that worker for the
// duration of the run.
//
//hotpath:isolated
type slot struct {
	n int64
	_ [56]byte
}

// mergeAfterWait is the wallRunJK idiom: loop-spawned workers index the
// slot table with a goroutine argument, and the spawner folds the slots
// only after wg.Wait. Clean.
func mergeAfterWait(workers int) int64 {
	slots := make([]slot, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			slots[wk].n++
		}(wk)
	}
	wg.Wait()
	var total int64
	for wk := range slots {
		total += slots[wk].n
	}
	return total
}

// mergeBeforeWait folds the slots while the workers may still be writing
// them: the wg.Wait comes after the merge loop, so no happens-before
// edge separates the writes from the reads.
func mergeBeforeWait(workers int) int64 {
	slots := make([]slot, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			slots[wk].n++
		}(wk)
	}
	var total int64
	for wk := range slots { // want `accessed while the goroutine spawned at line \d+ may still own it`
		total += slots[wk].n // want `no wg.Wait/channel-receive happens-before edge`
	}
	wg.Wait()
	return total
}

// sharedIndex captures the loop variable instead of taking it as a
// goroutine argument. The ownership discipline requires the slot index
// to be handed into the goroutine; a captured index cannot be proved to
// select a distinct slot per worker.
func sharedIndex(workers int) {
	slots := make([]slot, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		_ = wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			slots[wk].n++ // want `without a goroutine-owned index`
		}()
	}
	wg.Wait()
}

// loopShared loop-spawns workers that all bump slot 0 — a literal shared
// write, no owner.
func loopShared(workers int) {
	slots := make([]slot, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			slots[0].n++ // want `without a goroutine-owned index`
			_ = wk
		}(wk)
	}
	wg.Wait()
}

// channelJoin hands the whole value to one goroutine and takes it back
// through a close edge: single-spawn handoff, receive before read.
// Clean.
func channelJoin() int64 {
	var s slot
	done := make(chan struct{})
	go func() {
		s.n = 42
		close(done)
	}()
	<-done
	return s.n
}

// readBeforeJoin reads the slot before the completion receive.
func readBeforeJoin() int64 {
	var s slot
	done := make(chan struct{})
	go func() {
		s.n = 42
		close(done)
	}()
	total := s.n // want `may still own it`
	<-done
	return total
}

// launch is a spawn helper: the goroutine and its completion edge are
// inside, but the captured slot and WaitGroup belong to the caller — the
// spawn summary re-roots them at the call site.
func launch(wg *sync.WaitGroup, s *slot) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.n++
	}()
}

// helperJoin joins the helper-spawned worker before reading. Clean —
// and only provable interprocedurally.
func helperJoin() int64 {
	var s slot
	var wg sync.WaitGroup
	launch(&wg, &s)
	wg.Wait()
	return s.n
}

// helperNoJoin reads without the join: the helper's spawn still owns s.
func helperNoJoin() int64 {
	var s slot
	var wg sync.WaitGroup
	launch(&wg, &s)
	return s.n // want `may still own it`
}

// mutexShared guards both sides with one mutex: no join edge, but no
// race either. Clean.
func mutexShared() int64 {
	var s slot
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		mu.Lock()
		s.n++
		mu.Unlock()
		close(done)
	}()
	mu.Lock()
	v := s.n
	mu.Unlock()
	<-done
	return v
}

// mutexOneSided locks only on the spawner side; the goroutine writes
// bare, so the lock proves nothing.
func mutexOneSided() int64 {
	var s slot
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		s.n++
		close(done)
	}()
	mu.Lock()
	v := s.n // want `may still own it`
	mu.Unlock()
	<-done
	return v
}
