// Package ctxcancel exercises the request-path cancellation rule: every
// blocking operation reachable from an http handler must select on
// ctx.Done() or carry a deadline, and bare time.Sleep never belongs on a
// request path.
package ctxcancel

import (
	"net/http"
	"time"
)

var jobs = make(chan int)
var results = make(chan int)

// handleGood blocks, but under a select with a cancel case. Clean.
func handleGood(w http.ResponseWriter, r *http.Request) {
	select {
	case jobs <- 1:
	case <-r.Context().Done():
	}
}

// handleBare receives without any escape hatch.
func handleBare(w http.ResponseWriter, r *http.Request) {
	<-results // want `blocking channel receive`
}

// handleSleep stalls the request for a fixed interval.
func handleSleep(w http.ResponseWriter, r *http.Request) {
	time.Sleep(50 * time.Millisecond) // want `time.Sleep`
}

// waitForIt hides the blocking receive one call deep; the walk must
// follow the static call edge from the handler.
func waitForIt(ch chan int) int {
	return <-ch // want `blocking channel receive`
}

func handleHelper(w http.ResponseWriter, r *http.Request) {
	_ = waitForIt(results)
}

// offPath also blocks, but no handler reaches it. Clean.
func offPath(ch chan int) int {
	return <-ch
}

// handleNoCancelSelect multiplexes two channels but offers the request
// no way out.
func handleNoCancelSelect(w http.ResponseWriter, r *http.Request) {
	select { // want `no <-ctx.Done\(\), deadline, or default case`
	case v := <-results:
		_ = v
	case jobs <- 2:
	}
}

// handleDeadline bounds the wait with time.After. Clean.
func handleDeadline(w http.ResponseWriter, r *http.Request) {
	select {
	case v := <-results:
		_ = v
	case <-time.After(time.Second):
	}
}

// handleNonBlocking polls with a default case. Clean.
func handleNonBlocking(w http.ResponseWriter, r *http.Request) {
	select {
	case v := <-results:
		_ = v
	default:
	}
}

// handleCtxBare waits directly on the context — a bare receive, but
// from the cancellation signal itself. Clean.
func handleCtxBare(w http.ResponseWriter, r *http.Request) {
	<-r.Context().Done()
}

// handleRange drains a channel with no cancel check between elements.
func handleRange(w http.ResponseWriter, r *http.Request) {
	for v := range results { // want `range over channel`
		_ = v
	}
}

// handleSend pushes work with no escape hatch.
func handleSend(w http.ResponseWriter, r *http.Request) {
	jobs <- 3 // want `blocking channel send`
}
