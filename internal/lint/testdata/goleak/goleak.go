// Package goleak is an execlint fixture: go statements with and without
// a statically visible completion edge.
package goleak

import (
	"sync"
	"time"
)

// work is a plain helper with no completion edge of its own.
func work() {}

// leak spawns a goroutine nothing ever waits for.
func leak() {
	go work() // want `goroutine has no completion edge`
}

// leakLit is the same leak with a literal body.
func leakLit(n int) {
	go func() { // want `goroutine has no completion edge`
		_ = n * 2
	}()
}

// waited is the canonical pattern: Add dominates the launch, the body
// defers Done.
func waited(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// doneWithoutAdd calls Done on a local WaitGroup no Add ever armed:
// Wait can return before the worker finishes.
func doneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want `no wg\.Add dominates the go statement`
		defer wg.Done()
	}()
	wg.Wait()
}

// closer signals completion by closing a channel.
func closer() chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// sender signals completion by sending its result.
func sender() int {
	out := make(chan int)
	go func() {
		out <- 1
	}()
	return <-out
}

// ctxStyle: blocking on a cancellation channel is a completion edge.
func ctxStyle(cancel chan struct{}) {
	go func() {
		<-cancel
		work()
	}()
}

// worker is the interprocedural case: the Done lives in the callee, on
// a *sync.WaitGroup parameter.
func worker(wg *sync.WaitGroup) {
	defer wg.Done()
	work()
}

// viaHelper launches worker; the engine's summary re-roots worker's
// Done at the caller's WaitGroup, where the Add pairs with it.
func viaHelper() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
}

// viaHelperNoAdd launches worker without arming the WaitGroup.
func viaHelperNoAdd() {
	var wg sync.WaitGroup
	go worker(&wg) // want `no wg\.Add dominates the go statement`
	wg.Wait()
}

// indirect launches a function value; the engine cannot see the body.
func indirect(f func()) {
	go f() // want `goroutine target is a function value`
}

// outside launches a function outside the analyzed program.
func outside() {
	go time.Sleep(time.Millisecond) // want `outside the analyzed program`
}
