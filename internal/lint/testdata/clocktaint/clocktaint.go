// Package clocktaint is an execlint fixture: wall-clock and global-rand
// values laundered through helpers must be caught on their way into
// Result fields and registry charges, with the full call chain rendered.
package clocktaint

import (
	"math/rand"
	"time"

	"execmodels/internal/obs"
)

// Result mirrors core.Result: the struct the byte-identical guarantee
// covers.
type Result struct {
	Makespan     float64
	ScheduleCost float64
}

// stamp launders time.Now through one call hop.
func stamp() time.Time { return time.Now() }

// sinceSeconds launders time.Since through a second hop.
func sinceSeconds(t0 time.Time) float64 { return time.Since(t0).Seconds() }

// scale is a pure pass-through: taint must survive it.
func scale(x float64) float64 { return 2 * x }

// runLaundered is the multi-hop case: source and sink are three calls
// apart and never mentioned in the same function.
func runLaundered(res *Result) {
	t0 := stamp()
	cost := scale(sinceSeconds(t0))
	res.ScheduleCost = cost // want `nondeterministic value reaches clocktaint\.Result field ScheduleCost.*time\.Since.*sinceSeconds.*scale`
}

// runVirtual stores a value derived only from deterministic state.
func runVirtual(res *Result, clock float64) {
	res.Makespan = clock // clean: virtual time, no taint
}

// seeded uses an explicit seeded stream: methods on *rand.Rand are
// deterministic and must not be treated as sources.
func seeded(res *Result) {
	r := rand.New(rand.NewSource(42))
	res.Makespan = r.Float64() // clean: seeded stream
}

// directCharge feeds the shared global generator straight into a metric.
func directCharge(reg *obs.Registry) {
	jitter := rand.Float64()
	reg.Add("noise_seconds", 0, jitter) // want `nondeterministic value reaches obs\.Registry\.Add.*global rand\.Float64`
}

// chargeHelper reaches the registry one hop down; the finding is
// reported here, at the ultimate sink, where a suppression would belong.
func chargeHelper(reg *obs.Registry, v float64) {
	reg.Add("helper_seconds", 0, v) // want `nondeterministic value reaches obs\.Registry\.Add.*time\.Now.*passed to clocktaint\.chargeHelper`
}

// indirectCharge taints an argument and hands it to chargeHelper.
func indirectCharge(reg *obs.Registry) {
	t0 := time.Now()
	chargeHelper(reg, float64(t0.Nanosecond()))
}

var _ = runLaundered
var _ = runVirtual
var _ = seeded
var _ = directCharge
var _ = indirectCharge
