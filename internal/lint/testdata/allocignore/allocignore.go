// Package allocignore is an execlint fixture: per-site //lint:ignore
// allocfree suppressions through the driver. The sanctioned cold-start
// allocation stays quiet for every root that reaches it; the
// unsuppressed one reports.
package allocignore

// state is a reusable arena.
type state struct{ buf []float64 }

// grow is the sanctioned cold-start allocation.
func (s *state) grow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //lint:ignore allocfree fixture: arena grows once, then every call reuses it
	}
	s.buf = s.buf[:n]
}

// hot is the annotated root.
//
//hotpath:allocfree
func (s *state) hot(n int) float64 {
	s.grow(n)
	tmp := make([]float64, 2) // stays flagged: no directive
	return s.buf[0] + tmp[0]
}
