// Package allocfree is an execlint fixture: one example of every
// allocation-site class the allocfree check recognizes, reached from
// //hotpath:allocfree roots, plus the clean shapes the check must stay
// silent on (allowlisted callees, non-escaping local closures, and
// unannotated cold code).
package allocfree

import (
	"math"
	"sort"
)

// point is a small value struct: its value-typed composite literal does
// not allocate; taking the literal's address does.
type point struct{ x, y int }

// buffer backs the multi-hop case.
type buffer struct{ data [4]float64 }

var sinkFn func() int

// sink accepts an interface, forcing callers to box concrete values.
func sink(v interface{}) { _ = v }

// take stores the closure into a global, making it escape.
func take(f func() int) { sinkFn = f }

// variadicSum packs its arguments unless called with xs... .
func variadicSum(xs ...int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// spin is an allocation-free goroutine body.
func spin() {}

// Root walks one example of every direct allocation-site class.
//
//hotpath:allocfree
func Root(n int, s, t string, bs []byte, m map[string]int, xs []int, f func() int) {
	buf := make([]float64, 4)     // want `make\(\[\]float64, 4\) allocates`
	p := new(int)                 // want `new\(int\) allocates`
	ints := []int{1, 2, 3}        // want `slice literal allocates its backing array`
	tab := map[string]int{"a": 1} // want `map literal allocates`
	pt := &point{1, 2}            // want `escapes to the heap`
	xs = append(xs, 4)            // want `append may grow and reallocate xs`
	u := s + t                    // want `string concatenation allocates`
	raw := []byte(s)              // want `string→\[\]byte/\[\]rune conversion allocates`
	str := string(bs)             // want `\[\]byte/\[\]rune→string conversion allocates`
	sink(n)                       // want `n boxed into interface at argument n`
	var box interface{}
	box = n                       // want `n boxed into interface at assignment to box`
	m["k"] = n                    // want `map write to m may allocate`
	total := variadicSum(1, 2, 3) // want `packs variadic arguments into a slice`
	go spin()                     // want `go statement allocates a goroutine`
	take(func() int { return n }) // want `closure captures variables and escapes`
	total += f()                  // want `f is an indirect call`
	sort.Ints(ints)               // want `sort\.Ints\(ints\) calls into unanalyzed code`
	_, _, _, _, _, _, _, _, _ = buf, p, pt, u, raw, str, box, total, tab
}

// retBox boxes through its interface result.
//
//hotpath:allocfree
func retBox(n int) interface{} {
	return n // want `n boxed into interface at return value`
}

// Deep reaches its allocation three hops down; the finding's rendered
// path must name every hop from the root to the site.
//
//hotpath:allocfree
func Deep() *buffer { return hopA() }

func hopA() *buffer { return hopB() }

func hopB() *buffer {
	return &buffer{} // want `hot path \S*Deep is not allocation-free: &buffer\{\} escapes to the heap.*calls \S*hopA.*calls \S*hopB`
}

// CleanLocalClosure: a literal bound once to a local and only invoked is
// analyzed in the enclosing frame — neither the binding nor the calls
// through it report.
//
//hotpath:allocfree
func CleanLocalClosure(n int) int {
	idx := func(i int) int { return i * n }
	total := func() int { return idx(0) }() // IIFE: also non-escaping
	for i := 0; i < n; i++ {
		total += idx(i)
	}
	return total
}

// CleanMath exercises the out-of-program allowlist.
//
//hotpath:allocfree
func CleanMath(x float64) float64 { return math.Sqrt(x) * math.Abs(x) }

// coldSetup allocates freely: it is neither annotated nor reachable
// from any annotated root, so the check says nothing about it.
func coldSetup(n int) []float64 {
	out := make([]float64, n)
	return append(out, 1.0)
}
