// Package staleignore is an execlint fixture for suppression hygiene:
// one live directive, one dead one, and one naming a check outside the
// run's selection.
package staleignore

import "math/rand"

// live suppresses a real determinism finding.
func live() float64 {
	//lint:ignore determinism fixture: justified suppression that stays live
	return rand.Float64()
}

// dead carries a directive with nothing left to suppress — the call it
// once covered is gone.
func dead() int {
	//lint:ignore determinism fixture: the finding this covered is gone
	return 42
}

// otherCheck names a check not selected in the hygiene run; the report
// must not call it stale — that run never gave it a chance to fire.
func otherCheck() int {
	//lint:ignore floateq fixture: different check, not selected in this run
	return 1
}
