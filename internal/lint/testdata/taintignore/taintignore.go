// Package taintignore is an execlint fixture for suppressing
// interprocedural findings: because flows are reported at the ultimate
// sink, one //lint:ignore at the sink line silences the whole chain.
package taintignore

import "time"

// Result mirrors core.Result.
type Result struct{ ScheduleCost float64 }

// cost launders the wall clock through a helper.
func cost() float64 { return time.Since(time.Now()).Seconds() }

// storeDocumented carries a justified suppression at the sink.
func storeDocumented(res *Result) {
	//lint:ignore clocktaint fixture: documented wall-clock quantity, mirrors core.Result.ScheduleCost
	res.ScheduleCost = cost()
}

// storeLoud has no suppression and must be reported.
func storeLoud(res *Result) {
	res.ScheduleCost = cost()
}
