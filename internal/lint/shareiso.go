package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"execmodels/internal/lint/dataflow"
)

// ShareIso proves goroutine ownership of //hotpath:isolated state: values
// whose type carries the annotation (the wall-clock executors' per-worker
// wallAccum slots, ERI scratch arenas, per-worker scheduler cursors) may
// be written only by their owning goroutine, and cross-goroutine accesses
// are legal only past a proven happens-before edge.
//
// The rule, per function and per base variable holding isolated state:
//
//   - before any `go` statement that captures the variable, accesses are
//     ordinary sequential code — fine (initialization);
//   - inside a capturing goroutine literal, each access must be owned:
//     rooted at the literal's own parameters/locals, or selected through
//     an index that is itself a literal parameter (the "pass the worker
//     index as a goroutine argument" idiom of wallRunJK) — otherwise two
//     loop-spawned workers write the same slot;
//   - after a capturing spawn, spawner-side accesses need a happens-before
//     edge between the spawn and the access: a wg.Wait matching the
//     goroutine's wg.Done, or a channel receive matching its send/close
//     (edges and spawns are both found interprocedurally, so a launch
//     helper three calls deep still counts);
//   - alternatively, both sides may hold the same mutex.
//
// Spawns, completion edges and orderings come from the dataflow engine's
// goroutine-spawn and happens-before summaries, reusing goleak's
// completion-edge discovery.
type ShareIso struct{}

// NewShareIso returns the check. It scopes itself: only types annotated
// //hotpath:isolated are tracked, wherever they are declared.
func NewShareIso() *ShareIso { return &ShareIso{} }

func (s *ShareIso) Name() string { return "shareiso" }
func (s *ShareIso) Doc() string {
	return "//hotpath:isolated values are written only by their owning goroutine; cross-goroutine access requires a proven happens-before edge (wg.Wait, channel receive, or a shared mutex)"
}

// AppliesTo is true everywhere: the check scopes itself through the
// //hotpath:isolated annotations.
func (s *ShareIso) AppliesTo(string) bool { return true }

// Run analyzes a single package (fixture mode).
func (s *ShareIso) Run(pkg *Package) []Finding {
	return s.RunProgram([]*Package{pkg})
}

// isoType is one annotated type: display name and declaration position
// (the first step of every rendered path).
type isoType struct {
	name string
	pos  token.Position
}

// isoAccess is one expression whose type holds isolated state, with the
// base variable that owns it.
type isoAccess struct {
	expr ast.Expr
	at   token.Pos
	pos  token.Position
	root types.Object
	typ  isoType
}

// RunProgram analyzes all packages together.
func (s *ShareIso) RunProgram(pkgs []*Package) []Finding {
	isolated := collectIsolated(pkgs)
	if len(isolated) == 0 {
		return nil
	}
	dfp := dataflowPkgs(pkgs)
	eng := dataflow.New(dfp)
	compSums := eng.Completions()
	ordSums := eng.Orderings()
	spawnSums := eng.SpawnSummaries(compSums)

	var out []Finding
	seen := map[string]bool{}
	emit := func(f Finding) {
		k := f.Pos.String() + "|" + f.Message
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	for i, pkg := range pkgs {
		dp := dfp[i]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s.checkFunc(eng, dp, fd, isolated, compSums, ordSums, spawnSums, emit)
			}
		}
	}
	return out
}

// checkFunc applies the ownership rule to one function body.
func (s *ShareIso) checkFunc(eng *dataflow.Engine, dp *dataflow.Pkg, fd *ast.FuncDecl,
	isolated map[string]isoType,
	compSums map[string][]dataflow.Completion, ordSums map[string][]dataflow.Ordering,
	spawnSums map[string][]dataflow.GoSpawn, emit func(Finding)) {

	params := dataflow.ParamsOf(dp, fd)
	accesses := collectIsoAccesses(dp, params, fd.Body, isolated)
	if len(accesses) == 0 {
		return
	}
	spawns := eng.BodySpawns(dp, params, fd.Body, spawnSums, compSums)
	if len(spawns) == 0 {
		return // purely sequential function: every access is fine
	}
	ords := eng.BodyOrderings(dp, params, fd.Body, ordSums)

	// Direct-spawn extents: accesses inside them are goroutine-side (or
	// spawn-time argument evaluation, which the spawner performs
	// sequentially); orderings inside them are the goroutine's own and do
	// not order the spawner.
	var extents []*dataflow.SiteSpawn
	for i := range spawns {
		if spawns[i].Stmt != nil {
			extents = append(extents, &spawns[i])
		}
	}
	inExtent := func(p token.Pos) bool {
		for _, e := range extents {
			if p >= e.At && p < e.End {
				return true
			}
		}
		return false
	}
	spawnerEvents := collectLockEvents(dp, fd.Body, inExtent)

	// A goroutine-owned index is required only when several goroutine
	// instances can capture the same variable — a spawn inside a loop, or
	// multiple capturing spawns. A single spawn is whole-value handoff:
	// the spawner-side join requirement already polices it.
	loops := loopExtents(fd.Body)
	multiInstance := func(sp *dataflow.SiteSpawn, root types.Object) bool {
		for _, r := range loops {
			if sp.At >= r.lo && sp.At < r.hi {
				return true
			}
		}
		n := 0
		for i := range spawns {
			if spawns[i].Captures(root) {
				n++
			}
		}
		return n > 1
	}

	for _, a := range accesses {
		if inExtent(a.at) {
			s.checkGoroutineSide(dp, a, extents, multiInstance, emit)
			continue
		}
		s.checkSpawnerSide(dp, a, spawns, ords, spawnerEvents, inExtent, emit)
	}
}

// loopExtents returns the position spans of the for/range statements in a
// body.
func loopExtents(body ast.Node) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			out = append(out, posRange{n.Pos(), n.End()})
		}
		return true
	})
	return out
}

// checkSpawnerSide verifies one spawner-side access: every earlier spawn
// capturing the access's base variable must be joined by a matching
// happens-before edge (or both sides hold one mutex).
func (s *ShareIso) checkSpawnerSide(dp *dataflow.Pkg, a isoAccess, spawns []dataflow.SiteSpawn,
	ords []dataflow.SiteOrdering, spawnerEvents []lockEvent,
	inExtent func(token.Pos) bool, emit func(Finding)) {

	held := heldAt(spawnerEvents, a.at)
	for i := range spawns {
		sp := &spawns[i]
		// a.at < sp.End also skips accesses inside a propagated spawn's
		// call expression: argument evaluation happens before the callee
		// spawns anything.
		if a.at < sp.End || !sp.Captures(a.root) {
			continue
		}
		if joinedBetween(sp, a.at, ords, inExtent) {
			continue
		}
		if mutexCovers(dp, a, sp, held) {
			continue
		}
		emit(Finding{
			Pos:   a.pos,
			Check: s.Name(),
			Message: fmt.Sprintf("isolated %s state %q accessed while the goroutine spawned at line %d may still own it — no wg.Wait/channel-receive happens-before edge (or shared mutex) between the spawn and this access",
				a.typ.name, a.root.Name(), sp.Pos.Line),
			Path: dataflow.Path{
				{Pos: a.typ.pos, Desc: "isolated type " + a.typ.name + " (//hotpath:isolated)"},
				{Pos: sp.Pos, Desc: sp.Desc + " captures " + a.root.Name()},
				{Pos: a.pos, Desc: "unordered access to " + a.root.Name()},
			},
		})
		return // one finding per access is enough
	}
}

// joinedBetween reports whether an ordering between the spawn and the
// access matches one of the goroutine's completion edges: a wg.Wait
// against its wg.Done, or a channel receive against its send/close.
func joinedBetween(sp *dataflow.SiteSpawn, at token.Pos, ords []dataflow.SiteOrdering, inExtent func(token.Pos) bool) bool {
	for _, o := range ords {
		if o.At <= sp.At || o.At >= at || o.RootObj == nil || inExtent(o.At) {
			continue
		}
		for _, c := range sp.Completions {
			if c.RootObj != o.RootObj {
				continue
			}
			switch {
			case o.Kind == dataflow.OrderWait && c.Kind == dataflow.CompleteDone:
				return true
			case o.Kind == dataflow.OrderRecv && (c.Kind == dataflow.CompleteSend || c.Kind == dataflow.CompleteClose):
				return true
			}
		}
	}
	return false
}

// mutexCovers reports whether the spawner-side access holds a mutex that
// also guards every goroutine-side access to the same variable — the
// lock-based alternative to a join edge. Only verifiable for direct
// literal spawns: a named or propagated goroutine body is out of lexical
// reach.
func mutexCovers(dp *dataflow.Pkg, a isoAccess, sp *dataflow.SiteSpawn, held map[types.Object]bool) bool {
	if sp.Lit == nil || len(held) == 0 {
		return false
	}
	litEvents := collectLockEvents(dp, sp.Lit.Body, nil)
	for m := range held {
		if goroutineAccessesUnder(dp, sp, a.root, m, litEvents) {
			return true
		}
	}
	return false
}

// goroutineAccessesUnder reports whether every access to root inside the
// spawn's literal body happens while mutex m is held.
func goroutineAccessesUnder(dp *dataflow.Pkg, sp *dataflow.SiteSpawn, root types.Object, m types.Object, litEvents []lockEvent) bool {
	ok := true
	ast.Inspect(sp.Lit.Body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		e, isExpr := n.(ast.Expr)
		if !isExpr {
			return true
		}
		if obj, resolved := dataflow.RootObject(dp, nil, e); resolved && obj == root {
			if !heldAt(litEvents, e.Pos())[m] {
				ok = false
			}
			return false
		}
		return true
	})
	return ok
}

// checkGoroutineSide verifies one access inside a goroutine literal: the
// base variable must be the literal's own (param or local), selected
// through an index rooted at a literal parameter, or guarded by a mutex
// the goroutine holds.
func (s *ShareIso) checkGoroutineSide(dp *dataflow.Pkg, a isoAccess, extents []*dataflow.SiteSpawn, multiInstance func(*dataflow.SiteSpawn, types.Object) bool, emit func(Finding)) {
	var sp *dataflow.SiteSpawn
	for _, e := range extents {
		if a.at >= e.At && a.at < e.End {
			sp = e
			break
		}
	}
	if sp == nil || sp.Lit == nil {
		return
	}
	lit := sp.Lit
	if a.at < lit.Body.Pos() || a.at >= lit.Body.End() {
		return // spawn-time argument evaluation: still the spawner, sequential
	}
	if a.root.Pos() >= lit.Pos() && a.root.Pos() < lit.End() {
		return // the literal's own parameter or local: owned
	}
	if !multiInstance(sp, a.root) {
		return // single whole-value handoff; the join requirement covers it
	}
	litParams := dataflow.LitParams(dp, lit)
	if ownedIndex(dp, a.expr, litParams) {
		return // slots[wk] with wk a goroutine argument: owner-domain slot
	}
	litEvents := collectLockEvents(dp, lit.Body, nil)
	if len(heldAt(litEvents, a.at)) > 0 {
		return // lock-based sharing; the spawner side is checked symmetrically
	}
	emit(Finding{
		Pos:   a.pos,
		Check: s.Name(),
		Message: fmt.Sprintf("goroutine accesses isolated %s state %q without a goroutine-owned index — pass the worker index as a goroutine argument, or guard both sides with one mutex",
			a.typ.name, a.root.Name()),
		Path: dataflow.Path{
			{Pos: a.typ.pos, Desc: "isolated type " + a.typ.name + " (//hotpath:isolated)"},
			{Pos: sp.Pos, Desc: sp.Desc + " captures " + a.root.Name()},
			{Pos: a.pos, Desc: "unowned access to " + a.root.Name()},
		},
	})
}

// ownedIndex reports whether the access selects through an index
// expression rooted at one of the goroutine literal's own parameters —
// the wallRunJK idiom `go func(wk int) { ... &slots[wk] ... }(wk)`.
func ownedIndex(dp *dataflow.Pkg, access ast.Expr, litParams map[types.Object]int) bool {
	if len(litParams) == 0 {
		return false
	}
	found := false
	ast.Inspect(access, func(n ast.Node) bool {
		if found {
			return false
		}
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if obj, resolved := dataflow.RootObject(dp, nil, ix.Index); resolved {
			if _, isLitParam := litParams[obj]; isLitParam {
				found = true
			}
		}
		return true
	})
	return found
}

// collectIsolated gathers every struct type annotated //hotpath:isolated,
// keyed "pkgpath.Name".
func collectIsolated(pkgs []*Package) map[string]isoType {
	out := map[string]isoType{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					if !hasHotpathDoc(doc, "isolated") {
						continue
					}
					out[pkg.Path+"."+ts.Name.Name] = isoType{
						name: ts.Name.Name,
						pos:  pkg.Fset.Position(ts.Pos()),
					}
				}
			}
		}
	}
	return out
}

// isolatedTypeOf unwraps pointers, slices and arrays and reports the
// annotated named type an expression's type reaches, if any. It does not
// recurse into the fields of other named structs: holding a struct that
// *contains* isolated state is not itself an isolated access.
func isolatedTypeOf(t types.Type, isolated map[string]isoType) (isoType, bool) {
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Named:
			if x.Obj().Pkg() == nil {
				return isoType{}, false
			}
			it, ok := isolated[x.Obj().Pkg().Path()+"."+x.Obj().Name()]
			return it, ok
		default:
			return isoType{}, false
		}
	}
	return isoType{}, false
}

// collectIsoAccesses walks a body for the outermost value expressions
// whose type holds isolated state and that resolve to a base variable.
func collectIsoAccesses(dp *dataflow.Pkg, params map[types.Object]int, body ast.Node, isolated map[string]isoType) []isoAccess {
	var out []isoAccess
	ast.Inspect(body, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := dp.Info.Types[e]
		if !ok || !tv.IsValue() {
			return true
		}
		it, iso := isolatedTypeOf(tv.Type, isolated)
		if !iso {
			return true
		}
		root, resolved := dataflow.RootObject(dp, params, e)
		if !resolved {
			return true // no base variable (make, composite literal, call result)
		}
		out = append(out, isoAccess{expr: e, at: e.Pos(), pos: dp.Fset.Position(e.Pos()), root: root, typ: it})
		return false // outermost isolated expression: don't double-count parts
	})
	return out
}

// lockEvent is one lexical mutex operation: m.Lock() opens a region,
// m.Unlock() closes it, defer m.Unlock() keeps it open to the end of the
// enclosing body.
type lockEvent struct {
	at       token.Pos
	obj      types.Object
	lock     bool
	deferred bool
}

// collectLockEvents gathers the mutex operations of one body in lexical
// order. skip (optional) excludes subranges — the spawner's view must not
// see the goroutines' own lock operations.
func collectLockEvents(dp *dataflow.Pkg, body ast.Node, skip func(token.Pos) bool) []lockEvent {
	var out []lockEvent
	var deferred []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred = append(deferred, ds.Call.Pos())
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if skip != nil && skip(call.Pos()) {
			return true
		}
		sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := dp.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		var isLock bool
		switch {
		case isMutexOp(fn, "Lock"):
			isLock = true
		case isMutexOp(fn, "Unlock"):
			isLock = false
		default:
			return true
		}
		obj, okBase := baseIdentObj(dp, sel.X)
		if !okBase {
			return true
		}
		isDef := false
		for _, defPos := range deferred {
			if call.Pos() == defPos {
				isDef = true
			}
		}
		out = append(out, lockEvent{at: call.Pos(), obj: obj, lock: isLock, deferred: isDef})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// heldAt returns the mutexes lexically held at position p: locked before
// p and not released before p (a deferred unlock releases only at body
// end, so it never closes the region early).
func heldAt(events []lockEvent, p token.Pos) map[types.Object]bool {
	held := map[types.Object]bool{}
	for _, ev := range events {
		if ev.at >= p {
			break
		}
		switch {
		case ev.lock:
			held[ev.obj] = true
		case !ev.deferred:
			delete(held, ev.obj)
		}
	}
	return held
}

// isMutexOp reports a Lock/Unlock method on sync.Mutex or sync.RWMutex.
func isMutexOp(fn *types.Func, name string) bool {
	if fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	n := named.Obj().Name()
	if n != "Mutex" && n != "RWMutex" {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}
