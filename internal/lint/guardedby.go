package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
)

// GuardedBy turns the informal "// guarded by mu" field comments that
// concurrency code accumulates into a checked contract: a method of the
// annotated struct that reads or writes such a field must lock (or
// read-lock) the named mutex somewhere in its body.
//
// The analysis is deliberately flow-insensitive — it catches methods that
// *never* acquire the guard, which is the bug class that survives code
// review (a method added later that forgets the lock entirely). Two
// escape hatches cover the legitimate lock-free cases:
//
//   - methods whose name ends in "Locked", and
//   - methods whose doc comment says "called with <mu> held" (any phrase
//     containing "called with" and "held"),
//
// are treated as executing with the guard already held by the caller.
type GuardedBy struct{}

// NewGuardedBy returns the analyzer.
func NewGuardedBy() *GuardedBy { return &GuardedBy{} }

// Name implements Analyzer.
func (*GuardedBy) Name() string { return "guardedby" }

// Doc implements Analyzer.
func (*GuardedBy) Doc() string {
	return "fields annotated '// guarded by <mutex>' must only be accessed under that mutex"
}

// AppliesTo implements Analyzer: annotations are opt-in, so the check is
// cheap to run everywhere.
func (*GuardedBy) AppliesTo(string) bool { return true }

var (
	guardedByRe   = regexp.MustCompile(`(?i)\bguarded\s+by\s+([A-Za-z_][A-Za-z0-9_]*)`)
	callerHoldsRe = regexp.MustCompile(`(?i)\bcalled\s+with\b.*\bheld\b`)
)

// structGuards records, for one struct type, field name → guard field
// name.
type structGuards map[string]string

// Run implements Analyzer.
func (g *GuardedBy) Run(pkg *Package) []Finding {
	var out []Finding

	// Pass 1: collect annotations per struct type and validate that every
	// named guard is itself a field of the struct.
	guards := map[string]structGuards{} // type name → guards
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldSet := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldSet[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				guard, ok := fieldAnnotation(f)
				if !ok {
					continue
				}
				if !fieldSet[guard] {
					out = append(out, Finding{
						Pos:     pkg.Fset.Position(f.Pos()),
						Check:   g.Name(),
						Message: fmt.Sprintf("guard %q named in annotation is not a field of %s", guard, ts.Name.Name),
					})
					continue
				}
				sg := guards[ts.Name.Name]
				if sg == nil {
					sg = structGuards{}
					guards[ts.Name.Name] = sg
				}
				for _, name := range f.Names {
					sg[name.Name] = guard
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return out
	}

	// Pass 2: check every method of an annotated struct.
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			typeName := receiverTypeName(fd.Recv.List[0].Type)
			sg, ok := guards[typeName]
			if !ok {
				continue
			}
			if lockHeldByConvention(fd) {
				continue
			}
			recvObj, recvName := receiverIdent(pkg, fd.Recv.List[0])
			if recvName == "" {
				continue // unnamed receiver cannot touch fields
			}
			locked := lockedGuards(pkg, fd.Body, recvObj, recvName)
			reported := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if !isReceiver(pkg, sel.X, recvObj, recvName) {
					return true
				}
				field := sel.Sel.Name
				guard, ok := sg[field]
				if !ok || locked[guard] {
					return true
				}
				key := fmt.Sprintf("%s.%s", fd.Name.Name, field)
				if reported[key] {
					return true
				}
				reported[key] = true
				out = append(out, Finding{
					Pos:     pkg.Fset.Position(sel.Pos()),
					Check:   g.Name(),
					Message: fmt.Sprintf("%s.%s accesses %s (guarded by %s) without locking %s", typeName, fd.Name.Name, field, guard, guard),
				})
				return true
			})
		}
	}
	return out
}

// fieldAnnotation extracts the guard name from a field's line comment or
// doc comment.
func fieldAnnotation(f *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// lockHeldByConvention reports whether the method declares (by name or
// doc) that its caller already holds the guard.
func lockHeldByConvention(fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked" {
		return true
	}
	return fd.Doc != nil && callerHoldsRe.MatchString(fd.Doc.Text())
}

// receiverIdent returns the receiver's object (when type info resolved)
// and name.
func receiverIdent(pkg *Package, recv *ast.Field) (types.Object, string) {
	if len(recv.Names) == 0 {
		return nil, ""
	}
	id := recv.Names[0]
	if id.Name == "_" {
		return nil, ""
	}
	if pkg.Info != nil {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj, id.Name
		}
	}
	return nil, id.Name
}

// isReceiver reports whether expr is the method receiver, by object
// identity when types resolved, by name otherwise.
func isReceiver(pkg *Package, expr ast.Expr, recvObj types.Object, recvName string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	if recvObj != nil && pkg.Info != nil {
		return pkg.Info.Uses[id] == recvObj
	}
	return id.Name == recvName
}

// lockedGuards returns the set of guard fields the body locks via
// recv.<guard>.Lock / RLock calls (including deferred ones).
func lockedGuards(pkg *Package, body *ast.BlockStmt, recvObj types.Object, recvName string) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok || !isReceiver(pkg, inner.X, recvObj, recvName) {
			return true
		}
		locked[inner.Sel.Name] = true
		return true
	})
	return locked
}

// receiverTypeName unwraps *T / T receiver expressions to the type name.
func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver T[P]
		return receiverTypeName(t.X)
	case *ast.IndexListExpr:
		return receiverTypeName(t.X)
	}
	return ""
}
