package lint

import (
	"fmt"
	"go/ast"
)

// LockBalance flags functions that acquire a mutex without defer while
// having more than one return path. Such code is correct only until the
// next early return is added above the Unlock — at which point a worker
// goroutine parks forever and a work-stealing run deadlocks with no
// stack trace pointing at the cause. One straight-line return path is
// allowed (Lock/Unlock bracketing with no branches is fine and is the
// deque fast-path idiom); anything branchier must use defer.
type LockBalance struct{}

// NewLockBalance returns the analyzer.
func NewLockBalance() *LockBalance { return &LockBalance{} }

// Name implements Analyzer.
func (*LockBalance) Name() string { return "lockbalance" }

// Doc implements Analyzer.
func (*LockBalance) Doc() string {
	return "Lock() without defer Unlock() in a function with multiple return paths"
}

// AppliesTo implements Analyzer: the idiom is universal, run everywhere.
func (*LockBalance) AppliesTo(string) bool { return true }

// lockKind distinguishes the write and read lock pairs.
var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// Run implements Analyzer.
func (lb *LockBalance) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					out = append(out, lb.checkBody(pkg, fn.Name.Name, fn.Body)...)
				}
			case *ast.FuncLit:
				out = append(out, lb.checkBody(pkg, "func literal", fn.Body)...)
			}
			return true
		})
	}
	return out
}

// checkBody analyzes one function body, excluding nested function
// literals (each is its own scope with its own return paths and is
// visited separately by Run).
func (lb *LockBalance) checkBody(pkg *Package, name string, body *ast.BlockStmt) []Finding {
	type lockSite struct {
		pos  ast.Node
		kind string // "Lock" or "RLock"
	}
	locks := map[string][]lockSite{} // flattened receiver path → sites
	deferred := map[string]bool{}    // path + "." + unlock kind
	returns := 0

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate scope
		case *ast.ReturnStmt:
			returns++
		case *ast.DeferStmt:
			if path, kind, ok := mutexCall(n.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
				deferred[path+"."+kind] = true
			}
			// An unlock wrapped in a deferred closure still counts as
			// deferred; the closure's other contents are its own scope and
			// are visited separately by Run.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok {
						if p, k, ok := mutexCall(c); ok && (k == "Unlock" || k == "RUnlock") {
							deferred[p+"."+k] = true
						}
					}
					return true
				})
			}
			return false
		case *ast.CallExpr:
			if path, kind, ok := mutexCall(n); ok {
				if _, isLock := lockPairs[kind]; isLock {
					locks[path] = append(locks[path], lockSite{pos: n, kind: kind})
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	var out []Finding
	for path, sites := range locks {
		for _, site := range sites {
			if deferred[path+"."+lockPairs[site.kind]] {
				continue
			}
			if returns < 2 {
				continue
			}
			out = append(out, Finding{
				Pos:   pkg.Fset.Position(site.pos.Pos()),
				Check: lb.Name(),
				Message: fmt.Sprintf("%s: %s.%s() without defer %s.%s() but %d return paths; use defer or restructure",
					name, path, site.kind, path, lockPairs[site.kind], returns),
			})
		}
	}
	return out
}

// mutexCall matches calls of the shape <expr>.Lock/Unlock/RLock/RUnlock()
// and returns the flattened receiver path (e.g. "d.mu") plus the method
// name. Receivers that cannot be flattened to a dotted identifier path
// (map index, function result) are skipped — pairing them syntactically
// would guess.
func mutexCall(call *ast.CallExpr) (path, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	kind = sel.Sel.Name
	switch kind {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	path, ok = flattenPath(sel.X)
	return path, kind, ok
}

// flattenPath renders nested ident selectors as "a.b.c".
func flattenPath(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := flattenPath(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	case *ast.ParenExpr:
		return flattenPath(e.X)
	}
	return "", false
}
