package lint

import "testing"

// fixtureGoleak scopes the check onto the fixture package.
func fixtureGoleak(pkgPath string) *Goleak {
	return &Goleak{Packages: []string{pkgPath}}
}

func TestGoleakFixture(t *testing.T) {
	checkFixture(t, fixtureGoleak("fixture/goleak"), "goleak")
}

// TestGoleakRealTree: the executor packages' goroutines (wall-clock
// workers, MP ranks) must all carry completion edges today — the check
// exists to keep it that way.
func TestGoleakRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem", "internal/deque", "internal/ga", "internal/core")
	var g Goleak
	g.Packages = []string{"internal/core"}
	for _, f := range g.RunProgram(pkgs) {
		t.Errorf("goroutine without completion edge: %s", f)
	}
}
