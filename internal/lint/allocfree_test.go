package lint

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestAllocFreeFixture(t *testing.T) { checkFixture(t, NewAllocFree(), "allocfree") }

// TestAllocFreePathRendering pins the shape of the rendered chain on the
// multi-hop case: root first, every call hop in order, site last.
func TestAllocFreePathRendering(t *testing.T) {
	pkg := loadFixture(t, "allocfree")
	var deep []Finding
	for _, f := range NewAllocFree().Run(pkg) {
		if strings.Contains(f.Message, "Deep") {
			deep = append(deep, f)
		}
	}
	if len(deep) != 1 {
		t.Fatalf("got %d findings for root Deep, want 1: %v", len(deep), deep)
	}
	f := deep[0]
	if len(f.Path) != 4 {
		t.Fatalf("path has %d steps, want 4 (root, two hops, site): %s", len(f.Path), f.Path)
	}
	for i, sub := range []string{"hot path root", "calls", "calls", "escapes to the heap"} {
		if !strings.Contains(f.Path[i].Desc, sub) {
			t.Errorf("path step %d = %q, want substring %q", i, f.Path[i].Desc, sub)
		}
	}
}

// TestAllocSuppression exercises //lint:ignore allocfree through the
// driver: the sanctioned cold-start make stays quiet, the unsuppressed
// one reports with its interprocedural path.
func TestAllocSuppression(t *testing.T) {
	pkg := loadFixture(t, "allocignore")
	findings := Run([]*Package{pkg}, []Analyzer{NewAllocFree()})
	if len(findings) != 1 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want exactly 1 (the unsuppressed make)", len(findings))
	}
	if !strings.Contains(findings[0].Message, "make([]float64, 2)") {
		t.Errorf("surviving finding = %q, want the unsuppressed make([]float64, 2)", findings[0].Message)
	}
}

// TestHotpathMalformed: a //hotpath: directive with an unknown or empty
// kind is itself a finding — a typo would silently unprotect a hot path.
func TestHotpathMalformed(t *testing.T) {
	pkg := loadFixture(t, "hotpathbad")
	findings := Run([]*Package{pkg}, []Analyzer{NewAllocFree()})
	if len(findings) != 1 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want 1 (kind fast)", len(findings))
	}
	f := findings[0]
	if f.Check != "hotpath" {
		t.Errorf("check = %q, want hotpath", f.Check)
	}
	if want := "malformed //hotpath: directive (kind fast)"; !strings.Contains(f.Message, want) {
		t.Errorf("message = %q, want substring %q", f.Message, want)
	}
}

// loadReal loads repository packages through the module-aware loader for
// real-tree analysis tests.
func loadReal(t *testing.T, rels ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	var pkgs []*Package
	for _, rel := range rels {
		pkg, err := loader.LoadDir(filepath.Join(loader.ModRoot, rel), "execmodels/"+rel)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("%s: %d type errors, first: %v", rel, len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// TestAllocFreeRealTree is the acceptance gate in test form: the
// annotated chemistry hot paths (ExecuteTaskScratch and friends) must
// prove allocation-free — zero findings after the justified cold-start
// suppressions — and every allocfree suppression must still be earning
// its keep.
func TestAllocFreeRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem")
	findings, stale := RunWithStale(pkgs, []Analyzer{NewAllocFree()})
	for _, f := range findings {
		t.Errorf("hot path not allocation-free: %s", f)
	}
	for _, f := range stale {
		t.Errorf("stale suppression: %s", f)
	}

	rep := NewAllocFree().Analyze(pkgs)
	reached := func(file string) bool {
		for name := range rep.ReachableExtents {
			if strings.HasSuffix(name, file) {
				return true
			}
		}
		return false
	}
	for _, file := range []string{"fock.go", "hermite.go", "pairdata.go"} {
		if !reached(file) {
			t.Errorf("proof never reached %s — the annotated roots are not wired to the ERI kernels", file)
		}
	}
	sites := 0
	for _, lines := range rep.SiteLines {
		sites += len(lines)
	}
	if sites == 0 {
		t.Error("proof visited zero allocation/call lines — the analysis is vacuous")
	}
}

// escapeLineRe matches one compiler escape diagnostic:
// "file.go:line:col: <expr> escapes to heap" or "... moved to heap: x".
var escapeLineRe = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*)$`)

// TestAllocFreeCompilerGolden cross-checks the static proof against the
// compiler's own escape analysis: every allocation gc reports inside
// hot-path-reachable code must sit on a line the allocfree proof also
// visited (as a site or as the call edge inlining attributes it to). A
// compiler-found allocation the proof missed is a soundness hole.
func TestAllocFreeCompilerGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs := loadReal(t, "internal/linalg", "internal/chem")
	rep := NewAllocFree().Analyze(pkgs)

	cmd := exec.Command("go", "build", "-gcflags=-m=1", "./internal/chem")
	cmd.Dir = loader.ModRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build -gcflags=-m=1: %v\n%s", err, out)
	}

	checked := 0
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[3]
		isEscape := strings.HasSuffix(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
		if !isEscape {
			continue
		}
		// Constant strings (panic messages) are backed by static data;
		// boxing them does not allocate at run time and the proof
		// deliberately exempts them.
		if strings.HasPrefix(msg, `"`) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		var fullFile string
		inReach := false
		for name, extents := range rep.ReachableExtents {
			if !strings.HasSuffix(name, m[1]) {
				continue
			}
			fullFile = name
			for _, ext := range extents {
				if lineNo >= ext[0] && lineNo <= ext[1] {
					inReach = true
				}
			}
		}
		if !inReach {
			continue // cold code: setup, error paths, unannotated API
		}
		checked++
		if !rep.SiteLines[fullFile][lineNo] {
			t.Errorf("%s:%d: compiler reports %q inside hot-path-reachable code, but the allocfree proof has no site or call edge there", m[1], lineNo, msg)
		}
	}
	if checked < 3 {
		t.Fatalf("only %d compiler escape diagnostics fell inside hot-path-reachable code — the golden cross-check is vacuous (did -gcflags=-m=1 output change format?)", checked)
	}
}
