package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// Goleak enforces goroutine lifecycle discipline in the executor
// packages: every go statement must have a statically visible completion
// edge — a wg.Done paired with a dominating wg.Add, a channel
// close/send/receive, or a context-cancellation receive — so idle
// thieves and ping loops cannot leak past wg.Wait. Edges are found
// interprocedurally: `go worker(&wg)` counts when worker (or a helper it
// calls) does the Done.
type Goleak struct {
	// Packages is the scope, matched as import-path suffixes.
	Packages []string
}

// NewGoleak returns the check scoped to the packages that spawn
// goroutines on behalf of the executors, plus the serving layer whose
// worker pool must drain cleanly on shutdown.
func NewGoleak() *Goleak {
	return &Goleak{Packages: []string{"internal/core", "internal/mp", "internal/serve"}}
}

func (g *Goleak) Name() string { return "goleak" }
func (g *Goleak) Doc() string {
	return "every go statement in the executor packages needs a completion edge (wg.Add/Done pairing, channel close/send/receive, or context cancel)"
}

// AppliesTo scopes the check to the executor packages.
func (g *Goleak) AppliesTo(pkgPath string) bool {
	for _, p := range g.Packages {
		if hasSuffixPath(pkgPath, p) {
			return true
		}
	}
	return false
}

// Run analyzes a single package (fixture mode).
func (g *Goleak) Run(pkg *Package) []Finding {
	return g.RunProgram([]*Package{pkg})
}

// RunProgram analyzes all packages together; goroutine targets may live
// outside the scoped packages.
func (g *Goleak) RunProgram(pkgs []*Package) []Finding {
	dfp := dataflowPkgs(pkgs)
	eng := dataflow.New(dfp)
	sums := eng.Completions()

	var out []Finding
	for i, pkg := range pkgs {
		if !g.AppliesTo(pkg.Path) {
			continue
		}
		dp := dfp[i]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				params := dataflow.ParamsOf(dp, fd)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					if f := g.checkGo(eng, dp, fd, params, gs, sums); f != nil {
						out = append(out, *f)
					}
					return true
				})
			}
		}
	}
	return out
}

// checkGo verifies one go statement and returns a finding when no
// acceptable completion edge exists.
func (g *Goleak) checkGo(eng *dataflow.Engine, pkg *dataflow.Pkg, fd *ast.FuncDecl, params map[types.Object]int, gs *ast.GoStmt, sums map[string][]dataflow.Completion) *Finding {
	pos := pkg.Fset.Position(gs.Pos())
	fail := func(msg string) *Finding {
		return &Finding{Pos: pos, Check: g.Name(), Message: msg}
	}

	var comps []dataflow.SiteCompletion
	if lit, ok := unparenExpr(gs.Call.Fun).(*ast.FuncLit); ok {
		comps = eng.BodyCompletions(pkg, params, lit.Body, sums)
	} else {
		obj, callee, _ := eng.Callee(pkg, gs.Call)
		if obj == nil {
			return fail("goroutine target is a function value — cannot statically verify a completion edge")
		}
		if callee == nil {
			return fail("goroutine target " + obj.Name() + " is outside the analyzed program — cannot verify a completion edge")
		}
		// Analyzing the call expression itself re-roots the callee's
		// summary at this call's arguments, so a Done on a
		// *sync.WaitGroup parameter pairs with the caller's wg.Add.
		comps = eng.BodyCompletions(pkg, params, gs.Call, sums)
	}
	if len(comps) == 0 {
		return fail("goroutine has no completion edge: no wg.Done, channel close/send/receive, or context cancellation on any path")
	}

	// Any channel-shaped edge is enough. A wg.Done edge additionally
	// needs a wg.Add before the launch when the WaitGroup is local to
	// this function (for parameters and globals the pairing is the
	// caller's contract).
	needAdd := false
	var wgObj types.Object
	for _, c := range comps {
		switch c.Kind {
		case dataflow.CompleteClose, dataflow.CompleteSend, dataflow.CompleteRecv:
			return nil
		case dataflow.CompleteDone:
			if c.RootObj == nil {
				return nil // e.g. Done on an expression we cannot root
			}
			if _, isParam := params[c.RootObj]; isParam {
				return nil
			}
			if v, isVar := c.RootObj.(*types.Var); isVar && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return nil // package-level WaitGroup
			}
			if addBefore(pkg, fd, c.RootObj, gs.Pos()) {
				return nil
			}
			needAdd = true
			wgObj = c.RootObj
		}
	}
	if needAdd {
		name := "wg"
		if wgObj != nil {
			name = wgObj.Name()
		}
		return fail("goroutine calls " + name + ".Done but no " + name + ".Add dominates the go statement — wg.Wait can return before this worker finishes")
	}
	return fail("goroutine has no completion edge: no wg.Done, channel close/send/receive, or context cancellation on any path")
}

// addBefore reports whether obj.Add(...) is called somewhere in fd's
// body lexically before pos.
func addBefore(pkg *dataflow.Pkg, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || !dataflow.IsWaitGroupAdd(fn) {
			return true
		}
		if base, okBase := baseIdentObj(pkg, sel.X); okBase && base == obj {
			found = true
		}
		return true
	})
	return found
}

// baseIdentObj resolves &x, (*x), x to x's object.
func baseIdentObj(pkg *dataflow.Pkg, e ast.Expr) (types.Object, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil, false
			}
			e = x.X
		case *ast.Ident:
			if o := pkg.Info.Uses[x]; o != nil {
				return o, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}
