package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"

	"execmodels/internal/lint/dataflow"
)

// AllocFree proves functions annotated //hotpath:allocfree free of heap
// allocation: every annotated function is a root, the static call graph
// is traversed from it, and every reachable allocation site — or call
// the engine cannot see through — is reported with the full
// root→call-chain→site path. Deliberate cold-start allocations (arena
// growth) are suppressed per site with //lint:ignore allocfree <reason>.
type AllocFree struct{}

// NewAllocFree returns the check with its default configuration.
func NewAllocFree() *AllocFree { return &AllocFree{} }

func (a *AllocFree) Name() string { return "allocfree" }
func (a *AllocFree) Doc() string {
	return "call chains from //hotpath:allocfree functions must not allocate (make/new/literals, append, string building, boxing, closures, variadic packing, map writes)"
}

// AppliesTo is true everywhere; the analyzer self-scopes through the
// //hotpath:allocfree annotations.
func (a *AllocFree) AppliesTo(pkgPath string) bool { return true }

// Run analyzes a single package (fixture mode).
func (a *AllocFree) Run(pkg *Package) []Finding {
	return a.RunProgram([]*Package{pkg})
}

// RunProgram analyzes all packages together.
func (a *AllocFree) RunProgram(pkgs []*Package) []Finding {
	return a.Analyze(pkgs).Findings
}

// AllocReport is the full analysis result. Beyond the findings it
// records, per file, every line the proof visited — allocation sites and
// the call edges leading to them — plus the body extents of every
// function reachable from a root. The compiler escape-analysis golden
// test cross-checks `go build -gcflags=-m=1` output against these.
type AllocReport struct {
	Findings []Finding
	// ReachableExtents maps file → [startLine, endLine] body ranges of
	// functions reachable from any root.
	ReachableExtents map[string][][2]int
	// SiteLines maps file → set of lines carrying a reported allocation
	// site or a call-chain step toward one (inlining attributes callee
	// allocations to call-site lines).
	SiteLines map[string]map[int]bool
}

// Analyze runs the proof and returns findings plus coverage facts.
func (a *AllocFree) Analyze(pkgs []*Package) AllocReport {
	rep := AllocReport{
		ReachableExtents: map[string][][2]int{},
		SiteLines:        map[string]map[int]bool{},
	}
	dfp := dataflowPkgs(pkgs)
	eng := dataflow.New(dfp)

	// Roots: annotated declarations, in deterministic order.
	type root struct {
		id string
		fn *dataflow.Func
	}
	var roots []root
	byDecl := map[*ast.FuncDecl]*dataflow.Func{}
	eng.Each(func(f *dataflow.Func) { byDecl[f.Decl] = f })
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasHotpathDoc(fd.Doc, "allocfree") {
					continue
				}
				if f := byDecl[fd]; f != nil {
					roots = append(roots, root{id: f.ID, fn: f})
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].id < roots[j].id })

	type facts struct {
		sites []dataflow.AllocSite
		calls []dataflow.AllocCall
	}
	cache := map[string]facts{}
	factsOf := func(f *dataflow.Func) facts {
		if got, ok := cache[f.ID]; ok {
			return got
		}
		sites, calls := eng.AllocFacts(f, allocAllowedCallee)
		got := facts{sites: sites, calls: calls}
		cache[f.ID] = got
		return got
	}

	markLine := func(file string, line int) {
		set := rep.SiteLines[file]
		if set == nil {
			set = map[int]bool{}
			rep.SiteLines[file] = set
		}
		set[line] = true
	}

	seenFinding := map[string]bool{}
	for _, r := range roots {
		visited := map[string]bool{}
		var walk func(f *dataflow.Func, path dataflow.Path)
		walk = func(f *dataflow.Func, path dataflow.Path) {
			if visited[f.ID] {
				return
			}
			visited[f.ID] = true
			if f.Decl.Body != nil {
				start := f.Pkg.Fset.Position(f.Decl.Pos())
				end := f.Pkg.Fset.Position(f.Decl.End())
				rep.ReachableExtents[start.Filename] = append(rep.ReachableExtents[start.Filename], [2]int{start.Line, end.Line})
			}
			fx := factsOf(f)
			for _, site := range fx.sites {
				p := dataflow.ExtendPath(path, dataflow.Step{Pos: site.Pos, Desc: site.Desc})
				key := r.id + "|" + site.Pos.String() + "|" + site.Desc
				if seenFinding[key] {
					continue
				}
				seenFinding[key] = true
				markLine(site.Pos.Filename, site.Pos.Line)
				rep.Findings = append(rep.Findings, Finding{
					Pos:   site.Pos,
					Check: a.Name(),
					Message: fmt.Sprintf("hot path %s is not allocation-free: %s; path: %s",
						dataflow.FuncName(r.fn), site.Desc, p),
					Path: p,
				})
			}
			for _, call := range fx.calls {
				markLine(call.Pos.Filename, call.Pos.Line)
				walk(call.Callee, dataflow.ExtendPath(path, dataflow.Step{Pos: call.Pos, Desc: "calls " + dataflow.FuncName(call.Callee)}))
			}
		}
		rootPos := r.fn.Pkg.Fset.Position(r.fn.Decl.Pos())
		walk(r.fn, dataflow.Path{{Pos: rootPos, Desc: "hot path root " + dataflow.FuncName(r.fn) + " (//hotpath:allocfree)"}})
	}
	SortFindings(rep.Findings)
	for file := range rep.ReachableExtents {
		ext := rep.ReachableExtents[file]
		sort.Slice(ext, func(i, j int) bool { return ext[i][0] < ext[j][0] })
		rep.ReachableExtents[file] = ext
	}
	return rep
}

// allocAllowedCallee is the allowlist of out-of-program callees known
// not to allocate. Deliberately small: anything not listed shows up as
// an opaque-call finding and must either be added here (with the same
// scrutiny as a suppression) or wrapped.
func allocAllowedCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math", "sync/atomic":
		return true
	case "runtime":
		return fn.Name() == "Gosched"
	case "sync":
		return recvNameIn(fn, "Mutex", "RWMutex", "WaitGroup")
	case "time":
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			// Duration/Time arithmetic is value math.
			return recvNameIn(fn, "Duration", "Time")
		}
		switch fn.Name() {
		case "Now", "Since", "Until", "Sleep":
			return true
		}
		return false
	case "math/rand", "math/rand/v2":
		// Methods on an owned *rand.Rand are allocation-free; the
		// top-level convenience functions are banned by determinism
		// anyway.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return recvNameIn(fn, "Rand")
		}
		return false
	}
	return false
}

// recvNameIn reports whether fn is a method on one of the named types.
func recvNameIn(fn *types.Func, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}
