package lint

import "testing"

func TestShareIsoFixture(t *testing.T) { checkFixture(t, NewShareIso(), "shareiso") }

// TestShareIsoRealTree pins the repository's own hot paths lint-clean:
// the wall-clock worker loop writes only owner-domain state (wallAccum
// slots, per-worker ERIScratch) and the merge is ordered after wg.Wait,
// so shareiso must prove the tree race-free with zero findings.
func TestShareIsoRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem", "internal/deque", "internal/ga", "internal/core")
	findings := NewShareIso().RunProgram(pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding on real tree: %s", f)
	}
}
