package lint

import "testing"

func TestCtxCancelFixture(t *testing.T) {
	c := NewCtxCancel()
	c.Packages = []string{"fixture/ctxcancel"}
	checkFixture(t, c, "ctxcancel")
}

// TestCtxCancelRealTree pins the serving layer's request paths
// cancelable: no handler reachable code blocks on a bare channel op or
// sleeps.
func TestCtxCancelRealTree(t *testing.T) {
	pkgs := loadReal(t, "internal/linalg", "internal/chem", "internal/deque", "internal/ga", "internal/core", "internal/serve")
	findings := NewCtxCancel().RunProgram(pkgs)
	for _, f := range findings {
		t.Errorf("unexpected finding on real tree: %s", f)
	}
}
