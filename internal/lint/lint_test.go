package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata package and fails the test on parse or
// type-check problems — fixtures must be valid Go so the analyzers see
// the same shape of input they see on the real tree.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", name), "fixture/"+name)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	for _, e := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", name, e)
	}
	return pkg
}

var wantRe = regexp.MustCompile("want\\s+((`[^`]*`\\s*)+)")

// parseWants extracts `// want `pattern“ expectations: file → line →
// regexes that must each match at least one finding on that line.
func parseWants(pkg *Package) map[string]map[int][]*regexp.Regexp {
	wants := map[string]map[int][]*regexp.Regexp{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := wants[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*regexp.Regexp{}
					wants[pos.Filename] = byLine
				}
				for _, pat := range strings.Split(m[1], "`") {
					pat = strings.TrimSpace(pat)
					if pat == "" {
						continue
					}
					byLine[pos.Line] = append(byLine[pos.Line], regexp.MustCompile(pat))
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture and enforces exact
// agreement between findings and // want expectations: every finding must
// be expected, every expectation must fire.
func checkFixture(t *testing.T, a Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	findings := a.Run(pkg)
	wants := parseWants(pkg)

	matched := map[string]bool{} // "file:line:patIdx"
	for _, f := range findings {
		pats := wants[f.Pos.Filename][f.Pos.Line]
		ok := false
		for i, re := range pats {
			if re.MatchString(f.Message) {
				matched[fmt.Sprintf("%s:%d:%d", f.Pos.Filename, f.Pos.Line, i)] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for file, byLine := range wants {
		for line, pats := range byLine {
			for i, re := range pats {
				if !matched[fmt.Sprintf("%s:%d:%d", file, line, i)] {
					t.Errorf("%s:%d: expected finding matching %q, got none", file, line, re)
				}
			}
		}
	}
}

func TestDeterminismFixture(t *testing.T) { checkFixture(t, NewDeterminism(), "determinism") }
func TestGuardedByFixture(t *testing.T)   { checkFixture(t, NewGuardedBy(), "guardedby") }
func TestLockBalanceFixture(t *testing.T) { checkFixture(t, NewLockBalance(), "lockbalance") }
func TestFloatEqFixture(t *testing.T)     { checkFixture(t, NewFloatEq(), "floateq") }

// TestSuppression exercises the //lint:ignore path end to end through the
// driver: justified suppressions silence findings, mismatched checks do
// not, and a directive without a reason is itself reported.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "ignore")
	det := NewDeterminism()
	det.Packages = []string{"fixture/ignore"} // scope the check onto the fixture
	findings := Run([]*Package{pkg}, []Analyzer{det})

	var got []string
	for _, f := range findings {
		got = append(got, fmt.Sprintf("%s:%s", f.Check, filepath.Base(f.Pos.Filename)))
	}
	// Expect exactly, in file order: rand.Intn in loud, rand.NormFloat64
	// under the wrong-check directive, and the malformed reason-less
	// directive itself.
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(findings), got)
	}
	wantSubstrings := []string{
		"rand.Intn",
		"rand.NormFloat64",
		"malformed directive",
	}
	for i, sub := range wantSubstrings {
		if !strings.Contains(findings[i].Message, sub) {
			t.Errorf("finding %d = %q, want substring %q", i, findings[i].Message, sub)
		}
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "rand.Float64") || strings.Contains(f.Message, "rand.Int ") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
}

// TestAppliesTo pins the analyzer scoping rules the driver relies on.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		a    Analyzer
		path string
		want bool
	}{
		{NewDeterminism(), "execmodels/internal/core", true},
		{NewDeterminism(), "execmodels/internal/deque", true},
		{NewDeterminism(), "execmodels/internal/serve", true},
		{NewDeterminism(), "execmodels/internal/chem", false},
		{NewDeterminism(), "execmodels/internal/corelib", false},
		{NewGoleak(), "execmodels/internal/serve", true},
		{NewGoleak(), "execmodels/internal/chem", false},
		{NewFloatEq(), "execmodels/internal/chem", true},
		{NewFloatEq(), "execmodels/internal/linalg", true},
		{NewFloatEq(), "execmodels/internal/core", false},
		{NewShareIso(), "anything/at/all", true},
		{NewAtomicDiscipline(), "execmodels/internal/ga", true},
		{NewAtomicDiscipline(), "execmodels/internal/deque", true},
		{NewAtomicDiscipline(), "execmodels/internal/chem", false},
		{NewCtxCancel(), "execmodels/internal/serve", true},
		{NewCtxCancel(), "execmodels/internal/core", false},
		{NewGuardedBy(), "anything/at/all", true},
		{NewLockBalance(), "anything/at/all", true},
	}
	for _, c := range cases {
		if got := c.a.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.a.Name(), c.path, got, c.want)
		}
	}
}

// TestLoaderOnRealTree guards the module-aware loader: the repository's
// own cross-package imports (chem → linalg, core → everything) must
// type-check without errors, or floateq silently loses its type
// information.
func TestLoaderOnRealTree(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.ModPath != "execmodels" {
		t.Fatalf("module path = %q, want execmodels", loader.ModPath)
	}
	for _, rel := range []string{"internal/chem", "internal/core", "internal/linalg"} {
		dir := filepath.Join(loader.ModRoot, rel)
		pkg, err := loader.LoadDir(dir, "execmodels/"+rel)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: %d type errors, first: %v", rel, len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
	}
}
