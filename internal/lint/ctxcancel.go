package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// CtxCancel enforces cancellation discipline on the serving layer's
// request paths: every blocking operation reachable from an HTTP handler
// must be abandonable. A handler that blocks on a bare channel receive
// outlives its client — the connection is gone, the goroutine is not —
// and under load those orphans are the server's memory leak.
//
// Roots are functions with the `(http.ResponseWriter, *http.Request)`
// signature in the scoped packages; the walk follows static calls
// anywhere in the loaded program (a queue wait two helpers deep is still
// on the request path). In reachable code:
//
//   - bare channel sends, receives and range-over-channel are findings
//     unless the receive is itself a context-cancellation wait
//     (<-ctx.Done());
//   - a blocking select (no default case) must carry a cancellation or
//     deadline case: <-ctx.Done(), time.After, or a Timer/Ticker channel;
//   - time.Sleep is always a finding — a handler that needs to wait must
//     wait on something cancelable.
//
// Calls through function values and interface methods are opaque (not
// entered), the engine's standing precision limit.
type CtxCancel struct {
	// Packages is the root scope, matched as import-path suffixes.
	Packages []string
}

// NewCtxCancel returns the check scoped to the serving layer.
func NewCtxCancel() *CtxCancel {
	return &CtxCancel{Packages: []string{"internal/serve"}}
}

func (c *CtxCancel) Name() string { return "ctxcancel" }
func (c *CtxCancel) Doc() string {
	return "blocking operations reachable from HTTP handlers must select on ctx.Done() or a deadline; bare sends/receives and time.Sleep on request paths are findings"
}

// AppliesTo scopes the handler roots to the serving packages.
func (c *CtxCancel) AppliesTo(pkgPath string) bool {
	for _, p := range c.Packages {
		if hasSuffixPath(pkgPath, p) {
			return true
		}
	}
	return false
}

// Run analyzes a single package (fixture mode).
func (c *CtxCancel) Run(pkg *Package) []Finding {
	return c.RunProgram([]*Package{pkg})
}

// RunProgram walks the call graph from every handler root.
func (c *CtxCancel) RunProgram(pkgs []*Package) []Finding {
	dfp := dataflowPkgs(pkgs)
	eng := dataflow.New(dfp)

	var out []Finding
	visited := map[string]bool{}
	for i, pkg := range pkgs {
		if !c.AppliesTo(pkg.Path) {
			continue
		}
		dp := dfp[i]
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHandlerDecl(pkg, fd) {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				f := eng.Lookup(obj)
				if f == nil {
					continue
				}
				root := dataflow.Path{{
					Pos:  pkg.Fset.Position(fd.Pos()),
					Desc: "request handler " + dataflow.FuncName(f),
				}}
				c.walk(eng, dp, f, root, visited, &out)
			}
		}
	}
	return out
}

// walk scans one reachable function and recurses into its static callees.
// Each function is scanned once; the rendered path is the first root's.
func (c *CtxCancel) walk(eng *dataflow.Engine, dp *dataflow.Pkg, f *dataflow.Func, path dataflow.Path, visited map[string]bool, out *[]Finding) {
	if visited[f.ID] {
		return
	}
	visited[f.ID] = true
	fp := f.Pkg
	commOps, badSelects := classifySelects(fp, f.Decl.Body)

	emit := func(n ast.Node, msg, desc string) {
		pos := fp.Fset.Position(n.Pos())
		*out = append(*out, Finding{
			Pos:     pos,
			Check:   c.Name(),
			Message: msg,
			Path:    dataflow.ExtendPath(path, dataflow.Step{Pos: pos, Desc: desc}),
		})
	}
	for _, sel := range badSelects {
		emit(sel, "blocking select on a request path has no <-ctx.Done(), deadline, or default case — the handler cannot be canceled here",
			"uncancelable select")
	}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if !commOps[n] {
				emit(x, "blocking channel send on "+types.ExprString(x.Chan)+" in a request path without selecting on ctx.Done() or a deadline",
					"bare send on "+types.ExprString(x.Chan))
			}
		case *ast.UnaryExpr:
			if x.Op != token.ARROW || commOps[n] {
				return true
			}
			if isCancelWait(fp, x.X) {
				return true // <-ctx.Done(): waiting for cancellation is the point
			}
			emit(x, "blocking channel receive from "+types.ExprString(x.X)+" in a request path without selecting on ctx.Done() or a deadline",
				"bare receive from "+types.ExprString(x.X))
		case *ast.RangeStmt:
			if t := exprType(fp, x.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					emit(x, "range over channel "+types.ExprString(x.X)+" in a request path — unbounded wait with no ctx.Done() or deadline",
						"range over "+types.ExprString(x.X))
				}
			}
		case *ast.CallExpr:
			obj, callee, _ := eng.Callee(fp, x)
			if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Sleep" {
				emit(x, "time.Sleep on a request path — handlers must not sleep; wait on something cancelable (<-ctx.Done(), time.After in a select)",
					"time.Sleep")
				return true
			}
			if callee != nil {
				c.walk(eng, dp, callee, dataflow.ExtendPath(path, dataflow.Step{
					Pos:  fp.Fset.Position(x.Pos()),
					Desc: "calls " + dataflow.FuncName(callee),
				}), visited, out)
			}
		}
		return true
	})
}

// classifySelects partitions select statements: commOps collects the
// operation nodes that appear as select communication clauses (judged at
// the select level, not as bare ops), badSelects lists the selects that
// block without a cancellation path — no default case and no
// cancel/deadline communication.
func classifySelects(pkg *dataflow.Pkg, body ast.Node) (commOps map[ast.Node]bool, badSelects []*ast.SelectStmt) {
	commOps = map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault, hasCancel := false, false
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasDefault = true
				continue
			}
			var recvSrc ast.Expr
			switch stmt := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[stmt] = true
			case *ast.ExprStmt:
				if ue, isRecv := unparenExpr(stmt.X).(*ast.UnaryExpr); isRecv && ue.Op == token.ARROW {
					commOps[ue] = true
					recvSrc = ue.X
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) == 1 {
					if ue, isRecv := unparenExpr(stmt.Rhs[0]).(*ast.UnaryExpr); isRecv && ue.Op == token.ARROW {
						commOps[ue] = true
						recvSrc = ue.X
					}
				}
			}
			if recvSrc != nil && (isCancelWait(pkg, recvSrc) || isDeadlineSource(pkg, recvSrc)) {
				hasCancel = true
			}
		}
		if !hasDefault && !hasCancel {
			badSelects = append(badSelects, sel)
		}
		return true
	})
	return commOps, badSelects
}

// isCancelWait reports whether a receive source is a context-cancellation
// channel: ctx.Done() for any context.Context-shaped ctx (including
// r.Context().Done()).
func isCancelWait(pkg *dataflow.Pkg, src ast.Expr) bool {
	call, ok := unparenExpr(src).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Done" {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "context"
}

// isDeadlineSource reports whether a receive source bounds the wait in
// time: time.After(d), or the C channel of a time.Timer/Ticker.
func isDeadlineSource(pkg *dataflow.Pkg, src ast.Expr) bool {
	switch x := unparenExpr(src).(type) {
	case *ast.CallExpr:
		sel, ok := unparenExpr(x.Fun).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return false
		}
		return fn.Pkg() != nil && fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick")
	case *ast.SelectorExpr:
		if x.Sel.Name != "C" {
			return false
		}
		t := exprType(pkg, x.X)
		for t != nil {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		name := named.Obj().Name()
		return named.Obj().Pkg().Path() == "time" && (name == "Timer" || name == "Ticker")
	}
	return false
}

// isHandlerDecl reports the `(http.ResponseWriter, *http.Request)`
// signature, function or method.
func isHandlerDecl(pkg *Package, fd *ast.FuncDecl) bool {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	if !isNetHTTPNamed(sig.Params().At(0).Type(), "ResponseWriter") {
		return false
	}
	p, ok := sig.Params().At(1).Type().(*types.Pointer)
	return ok && isNetHTTPNamed(p.Elem(), "Request")
}

// isNetHTTPNamed reports a named type from net/http.
func isNetHTTPNamed(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http"
}

// exprType returns the type of an expression, nil when unknown.
func exprType(pkg *dataflow.Pkg, e ast.Expr) types.Type {
	if pkg.Info == nil {
		return nil
	}
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
