package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// Lockset extends guardedby from access checking to escape analysis. A
// "// guarded by mu" annotation promises that every access happens under
// mu — guardedby verifies the accesses it can see, but a reference to
// the guarded state that *escapes* the critical section makes the
// promise unenforceable: whoever holds the reference can touch the data
// after the mutex is released, and no per-statement check will ever see
// it. Lockset therefore flags a guarded field whose value is
//
//   - returned (for reference-typed fields: pointer, slice, map, chan —
//     returning a struct copy is fine), including returns laundered
//     through identity-shaped helpers (seen via the dataflow engine's
//     parameter-flow summaries),
//   - returned or stored as an alias created with &field (any type),
//   - stored to a package-level variable,
//   - sent on a channel, or
//   - captured by a goroutine launched in the method (the goroutine runs
//     after the method's critical section ends).
//
// Deliberate hand-offs (e.g. returning an internally-synchronized
// registry pointer whose *installation* is what the mutex guards) are
// documented with //lint:ignore lockset <reason> at the escape site.
type Lockset struct{}

// NewLockset returns the analyzer.
func NewLockset() *Lockset { return &Lockset{} }

// Name implements Analyzer.
func (*Lockset) Name() string { return "lockset" }

// Doc implements Analyzer.
func (*Lockset) Doc() string {
	return "references to '// guarded by' fields must not escape the critical section (return, global, channel, goroutine)"
}

// AppliesTo implements Analyzer: annotations are opt-in, so the check is
// cheap to run everywhere.
func (*Lockset) AppliesTo(string) bool { return true }

// Run implements Analyzer on a single package (fixture tests).
func (l *Lockset) Run(pkg *Package) []Finding {
	return l.RunProgram([]*Package{pkg})
}

// guardedField is one annotated field of one struct type.
type guardedField struct {
	guard string
	ref   bool // reference-typed: escapes by value, not only by address
}

// RunProgram implements ProgramAnalyzer.
func (l *Lockset) RunProgram(pkgs []*Package) []Finding {
	eng := dataflow.New(dataflowPkgs(pkgs))
	flows := eng.ParamFlows()

	var out []Finding
	for _, pkg := range pkgs {
		guards := collectGuardedFields(pkg)
		if len(guards) == 0 {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
					continue
				}
				gf, ok := guards[receiverTypeName(fd.Recv.List[0].Type)]
				if !ok {
					continue
				}
				recvObj, recvName := receiverIdent(pkg, fd.Recv.List[0])
				if recvName == "" {
					continue
				}
				out = append(out, l.checkMethod(pkg, eng, flows, fd, gf, recvObj, recvName)...)
			}
		}
	}
	return out
}

// collectGuardedFields gathers "// guarded by" annotations per struct
// type, recording whether each field's type is reference-shaped.
func collectGuardedFields(pkg *Package) map[string]map[string]guardedField {
	out := map[string]map[string]guardedField{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				guard, ok := fieldAnnotation(f)
				if !ok {
					continue
				}
				for _, name := range f.Names {
					m := out[ts.Name.Name]
					if m == nil {
						m = map[string]guardedField{}
						out[ts.Name.Name] = m
					}
					m[name.Name] = guardedField{guard: guard, ref: isRefType(pkg, name)}
				}
			}
			return true
		})
	}
	return out
}

// isRefType reports whether the declared field's type is
// reference-shaped: handing out its value aliases the guarded state.
func isRefType(pkg *Package, name *ast.Ident) bool {
	if pkg.Info == nil {
		return false
	}
	obj := pkg.Info.Defs[name]
	if obj == nil {
		return false
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// checkMethod walks one method body for escapes of guarded fields.
func (l *Lockset) checkMethod(pkg *Package, eng *dataflow.Engine, flows map[string]map[int]map[int]bool, fd *ast.FuncDecl, gf map[string]guardedField, recvObj types.Object, recvName string) []Finding {
	var out []Finding
	typeName := receiverTypeName(fd.Recv.List[0].Type)
	report := func(n ast.Node, field string, g guardedField, how string) {
		out = append(out, Finding{
			Pos:   pkg.Fset.Position(n.Pos()),
			Check: l.Name(),
			Message: fmt.Sprintf("%s.%s: reference to %s (guarded by %s) %s — it outlives the critical section",
				typeName, fd.Name.Name, field, g.guard, how),
		})
	}

	// escaping reports the guarded field an expression aliases, if any:
	// the field itself (when reference-typed), a slice of it, or its
	// address (any type).
	escaping := func(e ast.Expr) (string, guardedField, bool) {
		e = unparenExpr(e)
		addr := false
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
			addr = true
			e = unparenExpr(u.X)
		}
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = unparenExpr(sl.X) // a subslice shares the backing array
		}
		sel, ok := e.(*ast.SelectorExpr)
		if !ok || !isReceiver(pkg, sel.X, recvObj, recvName) {
			return "", guardedField{}, false
		}
		g, ok := gf[sel.Sel.Name]
		if !ok || (!g.ref && !addr) {
			return "", guardedField{}, false
		}
		return sel.Sel.Name, g, true
	}

	var inGo int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			// Everything the goroutine touches runs after this method's
			// locks are gone: a plain *read* of a guarded field inside is
			// already an escape.
			inGo++
			ast.Inspect(s.Call, walk)
			inGo--
			return false
		case *ast.SelectorExpr:
			if inGo > 0 && isReceiver(pkg, s.X, recvObj, recvName) {
				if g, ok := gf[s.Sel.Name]; ok {
					report(s, s.Sel.Name, g, "is captured by a goroutine")
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if field, g, ok := escaping(r); ok {
					report(r, field, g, "is returned")
					continue
				}
				// Identity-shaped helper: return helper(w.field) where
				// the helper's summary says the argument flows to a
				// result.
				if call, ok := unparenExpr(r).(*ast.CallExpr); ok {
					out = append(out, l.checkLaunderedReturn(pkg, eng, flows, call, escaping, typeName, fd)...)
				}
			}
		case *ast.SendStmt:
			if field, g, ok := escaping(s.Value); ok {
				report(s.Value, field, g, "is sent on a channel")
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i >= len(s.Rhs) {
					break
				}
				field, g, ok := escaping(s.Rhs[i])
				if !ok {
					continue
				}
				if root := globalTarget(pkg, lhs); root != "" {
					report(s.Rhs[i], field, g, "is stored to package-level "+root)
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return out
}

// checkLaunderedReturn flags `return helper(w.field)` when the helper's
// parameter-flow summary carries the argument into a result.
func (l *Lockset) checkLaunderedReturn(pkg *Package, eng *dataflow.Engine, flows map[string]map[int]map[int]bool, call *ast.CallExpr, escaping func(ast.Expr) (string, guardedField, bool), typeName string, fd *ast.FuncDecl) []Finding {
	dp := &dataflow.Pkg{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info}
	obj, _, _ := eng.Callee(dp, call)
	if obj == nil {
		return nil
	}
	flow := flows[dataflow.FuncID(obj)]
	if len(flow) == 0 {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Finding
	for i, arg := range call.Args {
		if len(flow[i]) == 0 || i >= sig.Params().Len() {
			continue
		}
		// Only identity-shaped flows alias: a helper returning the same
		// type it took (min, coalesce, clamp) hands the reference back.
		// A helper deriving a fresh value of another type (sortedKeys:
		// map → []string of copied keys) does not.
		aliases := false
		for r := range flow[i] {
			if r >= 0 && r < sig.Results().Len() &&
				types.Identical(sig.Params().At(i).Type(), sig.Results().At(r).Type()) {
				aliases = true
				break
			}
		}
		if !aliases {
			continue
		}
		field, g, ok := escaping(arg)
		if !ok {
			continue
		}
		out = append(out, Finding{
			Pos:   pkg.Fset.Position(arg.Pos()),
			Check: l.Name(),
			Message: fmt.Sprintf("%s.%s: reference to %s (guarded by %s) is returned through %s — it outlives the critical section",
				typeName, fd.Name.Name, field, g.guard, obj.Name()),
		})
	}
	return out
}

// globalTarget reports the name of the package-level variable an
// assignment target writes, or "" when the target is not package-level.
func globalTarget(pkg *Package, lhs ast.Expr) string {
	obj := baseObject(pkg, lhs)
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		return v.Name()
	}
	return ""
}

// unparenExpr strips parentheses.
func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
