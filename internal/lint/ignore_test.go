package lint

import (
	"strings"
	"testing"
)

// TestStaleSuppressions: a directive that suppressed nothing this run is
// reported, one that fired is not, and directives naming unselected
// checks are left alone (that run never gave them a chance to fire).
func TestStaleSuppressions(t *testing.T) {
	pkg := loadFixture(t, "staleignore")
	det := NewDeterminism()
	det.Packages = []string{"fixture/staleignore"}
	findings, stale := RunWithStale([]*Package{pkg}, []Analyzer{det})
	if len(findings) != 0 {
		for _, f := range findings {
			t.Logf("finding: %s", f)
		}
		t.Fatalf("got %d findings, want 0 (the live directive suppresses the only one)", len(findings))
	}
	if len(stale) != 1 {
		for _, f := range stale {
			t.Logf("stale: %s", f)
		}
		t.Fatalf("got %d stale reports, want exactly 1 (dead's directive)", len(stale))
	}
	f := stale[0]
	if f.Check != "staleignore" {
		t.Errorf("stale check = %q, want staleignore", f.Check)
	}
	if !strings.Contains(f.Message, "//lint:ignore determinism suppresses nothing") {
		t.Errorf("stale message = %q, want the suppresses-nothing wording naming the check", f.Message)
	}
}

// FuzzDirectiveParse hammers the pure directive parsers: arbitrary
// comment text must classify cleanly (directive, malformed, or not ours)
// and never panic — execlint parses every comment in the repository.
func FuzzDirectiveParse(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore determinism a fine reason",
		"//lint:ignore determinism",
		"//lint:ignore",
		"//lint:ignore  spaced   out  reason here",
		"//lint:ignoreallocfree glued",
		"// a regular comment",
		"//hotpath:allocfree",
		"//hotpath:padded trailing note",
		"//hotpath:isolated",
		"//hotpath:isolated per-worker accumulator",
		"//hotpath:isolate",
		"//hotpath:isolatedd",
		"//hotpath:fast",
		"//hotpath:",
		"//hotpath: allocfree",
		"//hotpath:\tallocfree",
		"//lint:ignore \x00 binary",
		"//hotpath:allocfree\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		check, reason, ok, malformed := parseIgnore(text)
		if ok && malformed {
			t.Fatalf("parseIgnore(%q): ok and malformed at once", text)
		}
		if ok && (check == "" || reason == "") {
			t.Fatalf("parseIgnore(%q): ok with empty check %q / reason %q", text, check, reason)
		}
		if !ok && !malformed && strings.HasPrefix(strings.TrimSpace(text), "//lint:ignore") {
			t.Fatalf("parseIgnore(%q): directive prefix classified as not-a-directive", text)
		}
		kind, ok2, malformed2 := parseHotpath(text)
		if ok2 && malformed2 {
			t.Fatalf("parseHotpath(%q): ok and malformed at once", text)
		}
		if ok2 && !hotpathKinds[kind] {
			t.Fatalf("parseHotpath(%q): accepted unknown kind %q", text, kind)
		}
		if !ok2 && !malformed2 && strings.HasPrefix(strings.TrimSpace(text), "//hotpath:") {
			t.Fatalf("parseHotpath(%q): directive prefix classified as not-a-directive", text)
		}
	})
}
