package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"execmodels/internal/lint/dataflow"
)

// ClockTaint is the interprocedural companion to the syntactic
// determinism check. Determinism forbids *calling* time.Now or the
// global math/rand functions in simulation packages but allowlists the
// stopwatch wrappers, because the paper reports real partitioner cost.
// That allowlist opens a hole: nothing syntactic stops a wall-clock
// value from flowing out of a wrapper, through any number of helpers,
// into state the byte-identical guarantee covers. ClockTaint closes the
// hole with taint tracking: values produced by time.Now/Since/Until,
// the global math/rand functions, or any //lint:source-annotated
// function are traced through assignments, returns and calls (via
// function summaries), and reported when they reach
//
//   - a field of a Result struct,
//   - a metric charge on obs.Registry (Count/Add/Set/Observe), or
//   - an obs exporter that takes an io.Writer.
//
// Every finding carries the full source→call-chain→sink path, and is
// reported at the sink, so one //lint:ignore at the sink documents the
// deliberate exception (core.Result.ScheduleCost — the one quantity
// defined to be wall-clock real time, which never enters the registry).
type ClockTaint struct {
	// Packages are import-path suffixes findings are reported in.
	// Summaries are still computed over the whole program.
	Packages []string
	// ResultTypes are struct type names treated as Result sinks.
	ResultTypes map[string]bool
}

// NewClockTaint returns the analyzer with the repository defaults.
func NewClockTaint() *ClockTaint {
	return &ClockTaint{
		Packages:    simPackages(),
		ResultTypes: map[string]bool{"Result": true},
	}
}

// Name implements Analyzer.
func (*ClockTaint) Name() string { return "clocktaint" }

// Doc implements Analyzer.
func (*ClockTaint) Doc() string {
	return "trace wall-clock/global-rand values interprocedurally; they must not reach Result fields, registry charges or exporters"
}

// AppliesTo implements Analyzer.
func (c *ClockTaint) AppliesTo(pkgPath string) bool {
	for _, suffix := range c.Packages {
		if hasSuffixPath(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// Run implements Analyzer on a single package (fixture tests).
func (c *ClockTaint) Run(pkg *Package) []Finding {
	return c.RunProgram([]*Package{pkg})
}

// RunProgram implements ProgramAnalyzer.
func (c *ClockTaint) RunProgram(pkgs []*Package) []Finding {
	eng := dataflow.New(dataflowPkgs(pkgs))
	spec := dataflow.TaintSpec{
		Source:    c.source,
		SinkStore: c.sinkStore,
		SinkArg:   c.sinkArg,
		ReportIn:  c.AppliesTo,
	}
	var out []Finding
	for _, tf := range eng.Taint(spec) {
		out = append(out, Finding{
			Pos:     tf.Pos,
			Check:   c.Name(),
			Message: fmt.Sprintf("nondeterministic value reaches %s; flow: %s", tf.Sink, tf.Path),
			Path:    tf.Path,
		})
	}
	return out
}

// source classifies intrinsic taint sources: the wall clock and the
// global math/rand convenience functions. Methods on a seeded *rand.Rand
// are deterministic and deliberately not sources.
func (c *ClockTaint) source(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			return "global rand." + fn.Name(), true
		}
	}
	return "", false
}

// sinkStore classifies assignment targets: any field of a Result-named
// struct type.
func (c *ClockTaint) sinkStore(pkg *dataflow.Pkg, lhs ast.Expr) (string, bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok || pkg.Info == nil {
		return "", false
	}
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !c.ResultTypes[named.Obj().Name()] {
		return "", false
	}
	short := ""
	if named.Obj().Pkg() != nil {
		short = shortPkg(named.Obj().Pkg().Path()) + "."
	}
	return short + named.Obj().Name() + " field " + sel.Sel.Name, true
}

// sinkArg classifies call arguments: anything passed to a registry
// charge, and anything passed to an obs exporter (a function in
// internal/obs taking an io.Writer).
func (c *ClockTaint) sinkArg(_ *dataflow.Pkg, _ *ast.CallExpr, fn *types.Func, _ int) (string, bool) {
	if isRegistryCharge(fn) {
		return "obs.Registry." + fn.Name(), true
	}
	if fn.Pkg() != nil && hasSuffixPath(fn.Pkg().Path(), "internal/obs") {
		if _, ok := dataflow.WriterParam(fn); ok {
			return "obs exporter " + fn.Name(), true
		}
	}
	return "", false
}

// shortPkg returns the last path element of an import path.
func shortPkg(path string) string {
	if i := lastSlash(path); i >= 0 {
		return path[i+1:]
	}
	return path
}
