package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden NDJSON files from current findings")

// encodeNDJSON renders findings exactly the way cmd/execlint -json does —
// one JSON object per line, path steps inline — so the goldens pin the
// machine-readable surface of the new finding kinds, not just their
// human-readable messages.
func encodeNDJSON(t *testing.T, findings []Finding) []byte {
	t.Helper()
	type jsonStep struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Desc string `json:"desc"`
	}
	type jsonFinding struct {
		File    string     `json:"file"`
		Line    int        `json:"line"`
		Column  int        `json:"column"`
		Check   string     `json:"check"`
		Message string     `json:"message"`
		Path    []jsonStep `json:"path,omitempty"`
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, f := range findings {
		jf := jsonFinding{
			File:    filepath.ToSlash(f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		}
		for _, s := range f.Path {
			jf.Path = append(jf.Path, jsonStep{File: filepath.ToSlash(s.Pos.Filename), Line: s.Pos.Line, Desc: s.Desc})
		}
		if err := enc.Encode(jf); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return buf.Bytes()
}

// checkGolden runs one analyzer over its fixture and compares the NDJSON
// rendering byte-for-byte against testdata/golden/<name>.ndjson. The
// comparison doubles as a determinism check: finding order, path steps
// and message text must all be stable or the goldens churn.
func checkGolden(t *testing.T, a Analyzer, fixture string) {
	t.Helper()
	pkg := loadFixture(t, fixture)
	findings := a.Run(pkg)
	SortFindings(findings)
	got := encodeNDJSON(t, findings)

	goldenPath := filepath.Join("testdata", "golden", fixture+".ndjson")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("NDJSON output drifted from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func TestShareIsoGolden(t *testing.T) { checkGolden(t, NewShareIso(), "shareiso") }

func TestAtomicDisciplineGolden(t *testing.T) {
	a := NewAtomicDiscipline()
	a.Packages = []string{"fixture/atomicdiscipline"}
	checkGolden(t, a, "atomicdiscipline")
}

func TestCtxCancelGolden(t *testing.T) {
	c := NewCtxCancel()
	c.Packages = []string{"fixture/ctxcancel"}
	checkGolden(t, c, "ctxcancel")
}
