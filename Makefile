# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race lint lint-determinism lint-fuzz zero-alloc bench bench-wall bench-serve cover cover-check fuzz fuzz-serve serve serve-smoke blame metrics experiments figures faults clean

all: build test lint

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Repo-specific static analysis, all thirteen checks: the syntactic
# determinism, guardedby, lockbalance and floateq; the interprocedural
# clocktaint, maporder and lockset; the hot-path proofs allocfree,
# goleak and padcheck; and the race-freedom proofs shareiso,
# atomicdiscipline and ctxcancel (see internal/lint,
# internal/lint/dataflow and cmd/execlint). -stale-suppressions also
# fails the run on any //lint:ignore directive that no longer
# suppresses anything.
lint:
	go run ./cmd/execlint -stale-suppressions ./...

# The linter's own determinism: diagnostics must be sorted, never
# map-ordered, so two consecutive runs are byte-identical — for the full
# suite and for every analyzer selected explicitly by name (their
# call-graph walks and layout maps must not leak map order either).
# `|| true` keeps a findings-bearing tree comparable; lint-determinism
# checks stability, `lint` checks cleanliness.
lint-determinism:
	go run ./cmd/execlint -json ./... > execlint_run1.json || true
	go run ./cmd/execlint -json ./... > execlint_run2.json || true
	diff execlint_run1.json execlint_run2.json
	go run ./cmd/execlint -json -analyzer determinism,guardedby,lockbalance,floateq,clocktaint,maporder,lockset,allocfree,goleak,padcheck,shareiso,atomicdiscipline,ctxcancel ./... > execlint_run1.json || true
	go run ./cmd/execlint -json -analyzer determinism,guardedby,lockbalance,floateq,clocktaint,maporder,lockset,allocfree,goleak,padcheck,shareiso,atomicdiscipline,ctxcancel ./... > execlint_run2.json || true
	diff execlint_run1.json execlint_run2.json
	rm -f execlint_run1.json execlint_run2.json

# Fuzz the execlint directive parsers: arbitrary comment text must never
# panic the linter.
lint-fuzz:
	go test ./internal/lint/ -fuzz FuzzDirectiveParse -fuzztime 30s -run '^$$'

# The zero-allocation gate from both sides: the dynamic AllocsPerRun
# tests (run without -race, which inserts allocations of its own) and
# the static allocfree proof over the same hot paths.
zero-alloc:
	go test ./internal/chem/ -run ZeroAlloc -count=1 -v
	go test ./internal/core/ -run ZeroAlloc -count=1 -v
	go run ./cmd/execlint -analyzer allocfree ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate the committed wall-clock Fock benchmark report: the real
# (non-simulated) executors at several worker counts, the pre-arena
# baseline vs the scratch-arena hot path, ns/task, GFLOP/s, allocs/task
# and steal/counter telemetry. Numbers are host-dependent; the committed
# file records the reference machine in its goos/gomaxprocs fields.
bench-wall:
	go run ./cmd/benchsuite -wall BENCH_wall.json -scale small
	go run ./cmd/benchsuite -exp W1 -scale small

# Run the SCF job server locally (spool ./spool, Ctrl-C drains cleanly).
serve:
	go run ./cmd/scfd -addr :8080 -spool spool

# Regenerate the committed load-test report: scfd + a 1000-client
# heavy-tailed scfload run (latency percentiles, throughput, per-tenant
# Jain fairness). Host-dependent, like BENCH_wall.json.
bench-serve:
	bash scripts/bench_serve.sh BENCH_serve.json

# The kill -9 / restart / resume smoke CI runs: burst load, a long job
# killed mid-run, checkpoint resume after restart, graceful drain.
serve-smoke:
	bash scripts/serve_smoke.sh bench_serve_ci.json

cover:
	go test -coverprofile=cover.out ./internal/...
	go tool cover -func=cover.out | tail -1

# Ratcheted coverage floor for the simulator core and the observability
# layer (both sit at ~93% today; raise the floor, never lower it).
COVER_MIN = 90.0
cover-check:
	go test -coverprofile=cover.out ./internal/core/ ./internal/obs/
	@go tool cover -func=cover.out | tail -1 | awk -v min=$(COVER_MIN) \
		'{ pct = $$3 + 0; printf "coverage %.1f%% (floor %.1f%%)\n", pct, min; \
		   if (pct < min) { print "coverage regressed below the ratchet"; exit 1 } }'

# Short deterministic fuzz pass (CI runs the same budget): the
# scheduling comparability invariant and the Schwarz no-false-pruning
# bound.
fuzz:
	go test ./internal/core/ -fuzz FuzzSemiVsHypergraphAssignment -fuzztime 30s -run '^$$'
	go test ./internal/chem/ -fuzz FuzzSchwarzBound -fuzztime 30s -run '^$$'

# Fuzz the job-server spec decoder: untrusted submissions must never
# panic, and accepted specs must survive Validate and a JSON round trip.
fuzz-serve:
	go test ./internal/serve/ -fuzz FuzzJobSpecDecode -fuzztime 30s -run '^$$'

# The observability walkthrough, run twice: byte-identical output is the
# layer's core promise.
blame:
	go run ./examples/blame > blame_run1.txt
	go run ./examples/blame > blame_run2.txt
	diff blame_run1.txt blame_run2.txt
	cat blame_run1.txt
	rm -f blame_run1.txt blame_run2.txt

# Per-model OpenMetrics dumps, JSON summaries and blame tables.
metrics:
	go run ./cmd/benchsuite -metrics metrics/ -ranks 8

# Regenerate the full evaluation at paper scale (minutes).
experiments:
	go run ./cmd/benchsuite -exp all -scale paper

figures:
	go run ./cmd/benchsuite -svg figures/

# Fault-injection quick pass: the F9/T8 experiments at small scale plus
# the deterministic walkthrough (run it twice: the output is identical).
faults:
	go run ./cmd/benchsuite -exp F9,T8 -scale small
	go run ./examples/faults

clean:
	rm -f cover.out test_output.txt bench_output.txt blame_run1.txt blame_run2.txt
	rm -f execlint_run1.json execlint_run2.json execlint.json
	rm -rf figures/ metrics/
