# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race lint bench cover experiments figures faults clean

all: build test lint

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Repo-specific static analysis: determinism, guardedby, lockbalance,
# floateq (see internal/lint and cmd/execlint).
lint:
	go run ./cmd/execlint ./...

bench:
	go test -bench=. -benchmem ./...

cover:
	go test -coverprofile=cover.out ./internal/...
	go tool cover -func=cover.out | tail -1

# Regenerate the full evaluation at paper scale (minutes).
experiments:
	go run ./cmd/benchsuite -exp all -scale paper

figures:
	go run ./cmd/benchsuite -svg figures/

# Fault-injection quick pass: the F9/T8 experiments at small scale plus
# the deterministic walkthrough (run it twice: the output is identical).
faults:
	go run ./cmd/benchsuite -exp F9,T8 -scale small
	go run ./examples/faults

clean:
	rm -f cover.out test_output.txt bench_output.txt
	rm -rf figures/
