// Variability: how each execution model degrades as per-rank speed
// variability grows — the "energy-induced performance variability" of
// emerging platforms the paper closes on. Static schedules are hostage to
// the slowest rank; dynamic models route around it.
//
//	go run ./examples/variability [-ranks p]
package main

import (
	"flag"
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

func main() {
	ranks := flag.Int("ranks", 32, "simulated ranks")
	flag.Parse()

	w := core.Synthetic(core.SyntheticOptions{
		NumTasks: 4096, Dist: "triangular", Seed: 3,
	})
	models := []core.Model{
		core.StaticCyclic{},
		core.DynamicCounter{Chunk: 1},
		core.WorkStealing{Seed: 3},
	}
	hets := []float64{0, 0.1, 0.2, 0.3, 0.4}

	fmt.Printf("slowdown (makespan / quiet makespan) at P=%d as per-rank speed spread grows\n\n", *ranks)
	fmt.Printf("%-16s", "model")
	for _, h := range hets {
		fmt.Printf("  h=%.1f", h)
	}
	fmt.Println()
	for _, model := range models {
		fmt.Printf("%-16s", model.Name())
		var base float64
		for i, h := range hets {
			m := cluster.New(cluster.Config{Ranks: *ranks, Heterogeneity: h, Seed: 5})
			res := model.Run(w, m)
			if i == 0 {
				base = res.Makespan
			}
			fmt.Printf("  %5.3f", res.Makespan/base)
		}
		fmt.Println()
	}
	fmt.Println("\nstatic-cyclic tracks 1/min(rank speed); the dynamic models stay nearly flat.")
}
