// Quickstart: build an irregular workload, run two execution models on a
// simulated 32-rank machine, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

func main() {
	// A workload with the triangular cost profile of a Fock build's pair
	// loop: task i costs ~2i/n of the mean. 4096 tasks, ~1 ms each.
	w := core.Synthetic(core.SyntheticOptions{
		NumTasks: 4096,
		Dist:     "triangular",
		Seed:     42,
	})
	fmt.Printf("workload: %s, %d tasks, max/mean cost = %.2f\n",
		w.Name, len(w.Tasks), w.CostImbalance())

	// A 32-rank machine: homogeneous speeds, RDMA-class network.
	m := cluster.New(cluster.Config{Ranks: 32, Seed: 1})
	ideal := m.IdealTime(w.TotalCost())
	fmt.Printf("ideal (perfect balance, zero overhead): %.4g s\n\n", ideal)

	// The traditional static schedule vs work stealing.
	static := core.StaticBlock{}.Run(w, m)
	steal := core.WorkStealing{Seed: 1}.Run(w, m)

	for _, r := range []*core.Result{static, steal} {
		fmt.Printf("%-14s makespan %.4g s   imbalance %.3f   efficiency %.0f%%\n",
			r.Model, r.Makespan, r.LoadImbalance(), 100*r.Efficiency(ideal))
	}
	improvement := (static.Makespan - steal.Makespan) / static.Makespan * 100
	fmt.Printf("\nwork stealing improves on static scheduling by %.1f%% "+
		"(the paper's headline result is ~50%%)\n", improvement)
}
