// Blame: a walkthrough of the observability layer (internal/obs). Every
// executor feeds a typed metric registry and a span trace as it runs;
// AnalyzeBlame then decomposes the run's total rank-seconds — makespan ×
// P — *exactly* into compute, communication, counter traffic, stealing,
// stalls, recovery, checkpointing, dead time and idle, and reports the
// critical path. Because the registry is fed from virtual clocks only,
// running this twice prints byte-identical output: the entire analysis
// is a pure function of (workload, machine, seed, plan).
//
//	go run ./examples/blame [-ranks p]
package main

import (
	"flag"
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/fault"
	"execmodels/internal/obs"
)

func main() {
	ranks := flag.Int("ranks", 16, "simulated ranks")
	flag.Parse()

	// A skewed synthetic workload: lognormal task costs make the blame
	// shares differ sharply between static and dynamic models.
	w := core.Synthetic(core.SyntheticOptions{
		NumTasks: 1024, Dist: "lognormal", Sigma: 1.4, Seed: 3,
	})
	cfg := cluster.Config{Ranks: *ranks, Heterogeneity: 0.2, Seed: 5}

	run := func(model core.Model, plan *fault.Plan) (*core.Result, *obs.Blame) {
		m := cluster.New(cfg)
		m.Trace = &cluster.Trace{}
		if plan != nil {
			m.Faults = fault.NewInjector(plan, *ranks)
		}
		res := model.Run(w, m)
		return res, res.Blame(m.Trace)
	}

	fmt.Println("where do the rank-seconds go? fault-free models first:")
	fmt.Println()
	for _, model := range []core.Model{
		core.StaticBlock{},
		core.DynamicCounter{},
		core.WorkStealing{Seed: 42},
		core.Persistence{},
	} {
		_, b := run(model, nil)
		fmt.Println(b.Table())
	}

	// The blame identity — components (idle included) sum to makespan × P
	// exactly — holds under faults too: crash a third of the ranks and the
	// lost time shows up as recovery, stall and dead components instead of
	// silently inflating idle.
	plan := fault.Spec{
		Ranks: *ranks, Horizon: 0.06, // inside the ~0.09s fault-free run
		CrashProb: 0.3,
		StallProb: 0.3, StallMean: 0.005,
		Seed: 7,
	}.Build()
	fmt.Printf("now resilient stealing under a fault plan (%d crashes, %d stalls):\n\n",
		len(plan.Crashes), len(plan.Stalls))
	res, b := run(core.ResilientStealing{Seed: 42}, plan)
	fmt.Println(b.Table())
	fmt.Printf("identity check: sum of components = %.9gs, makespan×P = %.9gs\n",
		b.Total(), b.Makespan*float64(b.Ranks))
	fmt.Printf("every task still completed exactly once (%d accounted); %d re-executed\n",
		len(res.CompletedBy), res.ReExecuted)

	fmt.Println("\nreading the tables: static-block's idle is imbalance the paper's dynamic models")
	fmt.Println("reclaim — they convert it into (much smaller) counter and steal components.")
}
