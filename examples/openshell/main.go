// Open shell: the chemistry kernel beyond the closed-shell case — an
// unrestricted Hartree–Fock calculation on triplet O2 (with the ⟨S²⟩
// spin-contamination diagnostic) and an MP2 correlation energy for water,
// both running through the same screened, blocked integral tasks the
// scheduling study uses.
//
//	go run ./examples/openshell
package main

import (
	"fmt"
	"log"

	"execmodels/internal/chem"
)

func main() {
	// Triplet dioxygen at its experimental bond length.
	const bohrPerAngstrom = 1.8897259886
	o2 := &chem.Molecule{
		Name: "O2",
		Atoms: []chem.Atom{
			{Z: 8},
			{Z: 8, Pos: chem.Vec3{Z: 1.2074 * bohrPerAngstrom}},
		},
	}
	bs, err := chem.NewBasis("sto-3g", o2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== UHF on triplet O2 (STO-3G) ===")
	res, err := chem.RunUHF(o2, bs, chem.UHFOptions{Multiplicity: 3, MaxIter: 200})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged: %v in %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("occupation: %dα / %dβ\n", res.NAlpha, res.NBeta)
	fmt.Printf("E(UHF)   = %.6f hartree\n", res.Energy)
	fmt.Printf("<S²>     = %.4f (exact triplet: 2.0; the excess is spin contamination)\n\n", res.S2)

	// MP2 on water: correlation on top of the RHF reference.
	water := chem.Water()
	wbs, err := chem.NewBasis("sto-3g", water)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== RHF + MP2 on H2O (STO-3G) ===")
	rhf, err := chem.RunSCF(water, wbs, chem.SCFOptions{UseDIIS: true}, nil)
	if err != nil {
		log.Fatal(err)
	}
	e2, err := chem.MP2Energy(wbs, rhf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("E(RHF)   = %.6f hartree (%d iterations with DIIS)\n", rhf.Energy, rhf.Iterations)
	fmt.Printf("E(MP2)   = %.6f hartree\n", e2)
	fmt.Printf("E(total) = %.6f hartree\n", rhf.Energy+e2)

	mu := chem.DipoleMoment(water, wbs, rhf.D)
	fmt.Printf("dipole   = %.4f a.u. (%.3f Debye)\n", mu.Norm(), mu.Norm()*2.541746)
}
