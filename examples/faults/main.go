// Faults: a walkthrough of the deterministic fault-injection subsystem
// (internal/fault). A seeded fault.Spec compiles to a Plan of rank
// crashes, transient stalls and message faults; the resilient executors
// run the same workload through it and report where the recovery time
// went. Running this twice prints byte-identical output — a run is a pure
// function of (workload, machine, seed, plan).
//
//	go run ./examples/faults [-ranks p] [-seed n]
package main

import (
	"flag"
	"fmt"

	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/fault"
)

func main() {
	ranks := flag.Int("ranks", 16, "simulated ranks")
	seed := flag.Int64("seed", 7, "fault-plan seed")
	flag.Parse()

	w := core.Synthetic(core.SyntheticOptions{
		NumTasks: 2048, Dist: "lognormal", Sigma: 1.2, Seed: 3,
	})
	cfg := cluster.Config{Ranks: *ranks, Heterogeneity: 0.2, Seed: 5}

	// Fault-free baselines first: the resilient executors on a reliable
	// machine behave like their base models plus zero-cost bookkeeping.
	fmt.Println("fault-free baselines:")
	base := map[string]float64{}
	for _, model := range core.ResilientModels(42) {
		res := model.Run(w, cluster.New(cfg))
		base[model.Name()] = res.Makespan
		fmt.Printf("  %s\n", res)
	}

	// Compile a fault plan: every rank has a 25% chance of fail-stopping
	// somewhere in the window, a 25% chance of one transient stall, and
	// every message faces a 2% drop chance. Same seed, same plan, always.
	horizon := 0.8 * base["resilient-static"]
	spec := fault.Spec{
		Ranks: *ranks, Horizon: horizon,
		CrashProb: 0.25,
		StallProb: 0.25, StallMean: horizon / 20,
		Drop: 0.02,
		Seed: *seed,
	}
	plan := spec.Build()
	fmt.Printf("\nfault plan (seed %d): %d crashes, %d stalls, %.0f%% message drop\n",
		*seed, len(plan.Crashes), len(plan.Stalls), 100*plan.Links.Drop)
	for _, c := range plan.Crashes {
		fmt.Printf("  rank %2d fail-stops at t=%.4fs\n", c.Rank, c.At)
	}

	fmt.Println("\nthe same workload under that plan:")
	for _, model := range core.ResilientModels(42) {
		m := cluster.New(cfg)
		m.Faults = fault.NewInjector(plan, *ranks)
		res := model.Run(w, m)
		fmt.Printf("  %s\n", res)
		fmt.Printf("      overhead=%+.3gs vs fault-free; every task completed exactly once (%d accounted)\n",
			res.Makespan-base[res.Model], len(res.CompletedBy))
	}

	fmt.Println("\nwork stealing re-absorbs a dead rank's queue on demand; static block stalls at")
	fmt.Println("the barrier before redistributing; checkpointed persistence rolls whole iterations back.")
}
