// Water clusters: run a real restricted Hartree–Fock calculation on a
// small water cluster, building the Fock matrix in parallel under each
// wall-clock execution model, and verify that all models converge to the
// same energy while differing in balance and time.
//
//	go run ./examples/waterclusters [-n waters] [-workers w] [-basis sto-3g]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
)

func main() {
	n := flag.Int("n", 2, "number of water molecules")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	basis := flag.String("basis", "sto-3g", "basis set (sto-3g or 6-31g)")
	flag.Parse()

	mol := chem.WaterCluster(*n, 7)
	bs, err := chem.NewBasis(*basis, mol)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s / %s: %d atoms, %d shells, %d basis functions, %d electrons\n",
		mol.Name, bs.Name, len(mol.Atoms), len(bs.Shells), bs.NBF, mol.NumElectrons())

	w := chem.BuildFockWorkload(bs, 1e-10, 4)
	fmt.Printf("fock workload: %d tasks, task-cost max/mean = %.2f\n\n",
		len(w.Tasks), w.CostImbalance())

	for _, mode := range []string{"static", "dynamic", "stealing"} {
		builder, err := core.ParallelFockBuilder(mode, *workers, core.WallOptions{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, builder)
		if err != nil {
			log.Fatal(err)
		}
		status := "converged"
		if !res.Converged {
			status = "NOT converged"
		}
		fmt.Printf("%-9s E = %.8f hartree  (%s in %d iterations, %v, %d workers)\n",
			mode, res.Energy, status, res.Iterations,
			time.Since(start).Round(time.Millisecond), *workers)
	}
	fmt.Println("\nall three execution models must agree on the energy to ~1e-9;")
	fmt.Println("they differ in load balance and wall time, which is the paper's subject.")
}
