// Message passing: the distributed-memory flavour of the execution stack.
// A Fock build runs on a goroutine-backed message-passing world (the MPI
// analog): the density is broadcast, tasks are claimed from a dedicated
// counter-server rank (the Global Arrays NXTVAL pattern), partial Fock
// contributions are combined with an allreduce — and the result is
// bit-compared against the serial build.
//
//	go run ./examples/messagepassing [-ranks n]
package main

import (
	"flag"
	"fmt"
	"log"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
)

func main() {
	ranks := flag.Int("ranks", 4, "worker ranks in the message-passing world")
	flag.Parse()

	mol := chem.WaterCluster(2, 7)
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		log.Fatal(err)
	}
	fw := chem.BuildFockWorkload(bs, 1e-10, 4)
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)

	fmt.Printf("%s: %d basis functions, %d tasks\n", mol.Name, bs.NBF, len(fw.Tasks))
	serial := fw.BuildFock(h, d)

	for _, mode := range []string{"static", "counter"} {
		res, err := core.DistributedFock(fw, h, d, *ranks, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmode=%s over %d ranks\n", mode, *ranks)
		fmt.Printf("  tasks per rank: %v\n", res.TasksByRank)
		if mode == "counter" {
			fmt.Printf("  counter-server ops: %d\n", res.CounterOps)
		}
		fmt.Printf("  max |F_mp - F_serial| = %.2e\n", res.F.MaxAbsDiff(serial))
	}
	fmt.Println("\nboth modes reproduce the serial Fock matrix exactly; they differ only")
	fmt.Println("in how work found its way to ranks — which is the paper's entire subject.")
}
