// Granularity: the trade-off between available work units and runtime
// overheads. Small tasks balance beautifully but drown in per-task and
// counter costs; huge tasks starve ranks. Each execution model has its own
// sweet spot — "finding the correct balance" is one of the paper's main
// lessons.
//
//	go run ./examples/granularity [-waters n] [-ranks p]
package main

import (
	"flag"
	"fmt"
	"log"

	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/core"
)

func main() {
	waters := flag.Int("waters", 3, "water molecules in the cluster")
	ranks := flag.Int("ranks", 16, "simulated ranks")
	flag.Parse()

	mol := chem.WaterCluster(*waters, 7)
	bs, err := chem.NewBasis("sto-3g", mol)
	if err != nil {
		log.Fatal(err)
	}
	pairs := chem.SchwarzBounds(bs)

	machine := func() *cluster.Machine {
		// A network slow enough that runtime overheads are visible.
		return cluster.New(cluster.Config{
			Ranks: *ranks, Seed: 1,
			Latency: 10e-6, CounterService: 4e-6, TaskOverhead: 20e-6,
		})
	}

	fmt.Printf("%s: makespan (simulated s) vs bra-pair block size at P=%d\n\n", mol.Name, *ranks)
	fmt.Printf("%-10s %-7s %-16s %-16s %-16s\n",
		"block", "tasks", "dynamic-counter", "work-stealing", "static-cyclic")
	for _, blockSize := range []int{1, 2, 4, 8, 16, 32, 64} {
		fw := chem.BuildFockWorkloadFromPairs(bs, pairs, 1e-9, blockSize)
		w := core.FromFock(fw)
		dyn := core.DynamicCounter{Chunk: 1}.Run(w, machine())
		st := core.WorkStealing{Seed: 1}.Run(w, machine())
		cyc := core.StaticCyclic{}.Run(w, machine())
		fmt.Printf("%-10d %-7d %-16.5g %-16.5g %-16.5g\n",
			blockSize, len(w.Tasks), dyn.Makespan, st.Makespan, cyc.Makespan)
	}
	fmt.Println("\nexpect U-shaped curves with model-dependent minima: the dynamic model")
	fmt.Println("pays a counter round-trip per task, so its minimum sits at larger blocks.")
}
