#!/usr/bin/env bash
# Regenerate the committed BENCH_serve.json: a full scfload run (1000
# concurrent clients, heavy-tailed job mix, three weighted tenants)
# against a locally started scfd. Numbers are host-dependent; the report
# records client/worker counts so runs are comparable.
set -euo pipefail

ADDR=127.0.0.1:8091
BASE="http://$ADDR"
OUT="${1:-BENCH_serve.json}"
CLIENTS="${CLIENTS:-1000}"
JOBS="${JOBS:-1500}"
SPOOL="$(mktemp -d)"
BIN="$(mktemp -d)"
SCFD_PID=""

cleanup() {
    [ -n "$SCFD_PID" ] && kill -9 "$SCFD_PID" 2>/dev/null || true
    rm -rf "$SPOOL" "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/scfd" ./cmd/scfd
go build -o "$BIN/scfload" ./cmd/scfload

"$BIN/scfd" -addr "$ADDR" -spool "$SPOOL" \
    -weights acme=3,blue=1,guest=1 -max-depth 256 &
SCFD_PID=$!
for _ in $(seq 1 100); do
    if curl -fs "$BASE/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.2
done

"$BIN/scfload" -addr "$BASE" -clients "$CLIENTS" -jobs "$JOBS" \
    -out "$OUT" -tenants acme=3,blue=1,guest=1

kill -TERM "$SCFD_PID"
wait "$SCFD_PID"
SCFD_PID=""
echo "bench_serve: wrote $OUT"
