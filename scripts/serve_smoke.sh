#!/usr/bin/env bash
# CI smoke test for the SCF job server: start scfd, drive a scfload
# burst, kill -9 the server mid-job, restart it over the same spool,
# verify the killed job resumes from its checkpoint and converges, and
# assert a clean graceful drain. Writes the burst's bench report to the
# path given as $1 (default bench_serve_ci.json).
set -euo pipefail

ADDR=127.0.0.1:8089
BASE="http://$ADDR"
OUT="${1:-bench_serve_ci.json}"
SPOOL="$(mktemp -d)"
SCFD="$(mktemp -d)/scfd"
SCFLOAD="$(dirname "$SCFD")/scfload"
SCFD_PID=""

cleanup() {
    [ -n "$SCFD_PID" ] && kill -9 "$SCFD_PID" 2>/dev/null || true
    rm -rf "$SPOOL" "$(dirname "$SCFD")"
}
trap cleanup EXIT

go build -o "$SCFD" ./cmd/scfd
go build -o "$SCFLOAD" ./cmd/scfload

start_scfd() {
    "$SCFD" -addr "$ADDR" -spool "$SPOOL" -workers 2 \
        -weights acme=3,blue=1,guest=1 &
    SCFD_PID=$!
    for _ in $(seq 1 100); do
        if curl -fs "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.2
    done
    echo "serve_smoke: scfd did not become healthy" >&2
    exit 1
}

json_field() { # json_field <file-or-> <field>: first string/number value
    grep -o "\"$2\":\"\?[^,\"}]*\"\?" "$1" | head -1 | sed 's/.*://; s/"//g'
}

echo "== phase 1: start scfd, submit a long job, kill -9 mid-run =="
start_scfd

LONG_SPEC='{"tenant":"acme","molecule":"waters:6","basis":"sto-3g"}'
SUBMIT="$(curl -fs -X POST -d "$LONG_SPEC" "$BASE/v1/jobs")"
LONG_ID="$(echo "$SUBMIT" | grep -o '"id":"[^"]*"' | cut -d'"' -f4)"
[ -n "$LONG_ID" ] || { echo "serve_smoke: submit failed: $SUBMIT" >&2; exit 1; }
echo "long job: $LONG_ID"

# Wait for at least one checkpointed iteration, then kill without mercy.
for _ in $(seq 1 300); do
    [ -f "$SPOOL/$LONG_ID/ckpt.json" ] && break
    sleep 0.2
done
[ -f "$SPOOL/$LONG_ID/ckpt.json" ] || { echo "serve_smoke: no checkpoint appeared" >&2; exit 1; }
CKPT_ITER="$(json_field "$SPOOL/$LONG_ID/ckpt.json" iteration)"
echo "checkpoint at iteration $CKPT_ITER; killing scfd (SIGKILL)"
kill -9 "$SCFD_PID"
wait "$SCFD_PID" 2>/dev/null || true
SCFD_PID=""
[ ! -f "$SPOOL/$LONG_ID/result.json" ] || { echo "serve_smoke: job finished before the kill; smoke needs a longer job" >&2; exit 1; }

echo "== phase 2: restart over the same spool, drive a burst, expect resume =="
start_scfd

"$SCFLOAD" -addr "$BASE" -clients 100 -jobs 150 -out "$OUT" \
    -tenants acme=3,blue=1,guest=1

# The killed job must finish too — resumed from its checkpoint.
for _ in $(seq 1 600); do
    [ -f "$SPOOL/$LONG_ID/result.json" ] && break
    sleep 0.5
done
RESULT="$SPOOL/$LONG_ID/result.json"
[ -f "$RESULT" ] || { echo "serve_smoke: killed job never finished after restart" >&2; exit 1; }
grep -q '"converged":true' "$RESULT" || { echo "serve_smoke: resumed job did not converge: $(cat "$RESULT")" >&2; exit 1; }
RESUMED_FROM="$(json_field "$RESULT" resumedFrom)"
[ -n "$RESUMED_FROM" ] && [ "$RESUMED_FROM" -ge 1 ] || { echo "serve_smoke: job did not resume from a checkpoint: $(cat "$RESULT")" >&2; exit 1; }
echo "killed job resumed from iteration $RESUMED_FROM and converged"

echo "== phase 3: graceful drain =="
kill -TERM "$SCFD_PID"
DRAIN_OK=0
for _ in $(seq 1 120); do
    if ! kill -0 "$SCFD_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.5
done
if [ "$DRAIN_OK" != 1 ]; then echo "serve_smoke: scfd did not drain within 60s" >&2; exit 1; fi
wait "$SCFD_PID" 2>/dev/null; STATUS=$?
SCFD_PID=""
[ "$STATUS" -eq 0 ] || { echo "serve_smoke: scfd exited with status $STATUS" >&2; exit 1; }

echo "serve_smoke: OK (report: $OUT)"
