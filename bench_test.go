package execmodels

// One testing.B benchmark per reconstructed table and figure (see
// DESIGN.md's per-experiment index), plus kernel micro-benchmarks. Run
// everything with:
//
//	go test -bench=. -benchmem
//
// Table output goes to stderr once per benchmark via b.Logf-free printing
// so `-bench` runs double as experiment reports.

import (
	"fmt"
	"io"
	"os"
	"testing"

	"execmodels/internal/bench"
	"execmodels/internal/chem"
	"execmodels/internal/cluster"
	"execmodels/internal/core"
	"execmodels/internal/deque"
	"execmodels/internal/hypergraph"
	"execmodels/internal/linalg"
	"execmodels/internal/semimatching"
)

var suite = bench.NewSuite("small", 1)

// benchOut is where experiment tables are printed during -bench runs.
var benchOut io.Writer = os.Stdout

// runExperiment executes experiment id once per iteration and prints the
// table on the final iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	var tbl *bench.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = suite.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	if tbl != nil {
		tbl.Fprint(benchOut)
	}
}

func BenchmarkFigure1(b *testing.B) { runExperiment(b, "F1") }
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "F2") }
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "F3") }
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "F4") }
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "F5") }
func BenchmarkTable1(b *testing.B)  { runExperiment(b, "T1") }
func BenchmarkTable2(b *testing.B)  { runExperiment(b, "T2") }
func BenchmarkTable3(b *testing.B)  { runExperiment(b, "T3") }
func BenchmarkTable4(b *testing.B)  { runExperiment(b, "T4") }
func BenchmarkTable5(b *testing.B)  { runExperiment(b, "T5") }
func BenchmarkTable6(b *testing.B)  { runExperiment(b, "T6") }
func BenchmarkTable7(b *testing.B)  { runExperiment(b, "T7") }
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "F6") }
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "F7") }
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "F8") }
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "F9") }
func BenchmarkTable8(b *testing.B)  { runExperiment(b, "T8") }
func BenchmarkTable9(b *testing.B)  { runExperiment(b, "T9") }

// Ablation benches (DESIGN.md "key design decisions").
func BenchmarkAblationWallVsSim(b *testing.B)    { runExperiment(b, "A1") }
func BenchmarkAblationUniformCosts(b *testing.B) { runExperiment(b, "A2") }
func BenchmarkAblationStealPolicy(b *testing.B)  { runExperiment(b, "A3") }
func BenchmarkAblationLPT(b *testing.B)          { runExperiment(b, "A4") }
func BenchmarkAblationFlatFM(b *testing.B)       { runExperiment(b, "A5") }
func BenchmarkAblationChunkSize(b *testing.B)    { runExperiment(b, "A6") }
func BenchmarkAblationSelfSched(b *testing.B)    { runExperiment(b, "A7") }
func BenchmarkAblationFMRefiner(b *testing.B)    { runExperiment(b, "A8") }

// Wall-clock backend (BENCH_wall.json; `make bench-wall`).
func BenchmarkWallBackend(b *testing.B)  { runExperiment(b, "W1") }
func BenchmarkWallFeedback(b *testing.B) { runExperiment(b, "W3") }

// --- kernel micro-benchmarks ---

func waterBasis(b *testing.B, n int, name string) (*chem.Molecule, *chem.BasisSet) {
	b.Helper()
	mol := chem.WaterCluster(n, 1)
	bs, err := chem.NewBasis(name, mol)
	if err != nil {
		b.Fatal(err)
	}
	return mol, bs
}

func BenchmarkBoys(b *testing.B) {
	out := make([]float64, 9)
	for i := 0; i < b.N; i++ {
		chem.Boys(8, float64(i%50)+0.5, out)
	}
}

func BenchmarkERIBlockSSSS(b *testing.B) {
	_, bs := waterBasis(b, 1, "sto-3g")
	var s *chem.Shell
	for i := range bs.Shells {
		if bs.Shells[i].L == 0 {
			s = &bs.Shells[i]
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chem.ERIBlock(s, s, s, s)
	}
}

func BenchmarkERIBlockPPPP(b *testing.B) {
	_, bs := waterBasis(b, 1, "sto-3g")
	var p *chem.Shell
	for i := range bs.Shells {
		if bs.Shells[i].L == 1 {
			p = &bs.Shells[i]
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chem.ERIBlock(p, p, p, p)
	}
}

// The pair-data cache vs recomputing Hermite tables per quartet.
func BenchmarkERIBlockPairCached(b *testing.B) {
	_, bs := waterBasis(b, 1, "sto-3g")
	var p *chem.Shell
	for i := range bs.Shells {
		if bs.Shells[i].L == 1 {
			p = &bs.Shells[i]
			break
		}
	}
	pd := chem.NewPairData(p, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chem.ERIBlockPair(pd, pd)
	}
}

func BenchmarkSchwarzBounds(b *testing.B) {
	_, bs := waterBasis(b, 2, "sto-3g")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chem.SchwarzBounds(bs)
	}
}

func BenchmarkFockBuildSerial(b *testing.B) {
	mol, bs := waterBasis(b, 1, "sto-3g")
	w := chem.BuildFockWorkload(bs, 1e-9, 4)
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.BuildFock(h, d)
	}
}

func BenchmarkSCFWaterSTO3G(b *testing.B) {
	mol, bs := waterBasis(b, 1, "sto-3g")
	for i := 0; i < b.N; i++ {
		if _, err := chem.RunSCF(mol, bs, chem.SCFOptions{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym(b *testing.B) {
	m := linalg.NewMatrix(40, 40)
	for i := 0; i < 40; i++ {
		for j := 0; j <= i; j++ {
			v := 1 / float64(i+j+1)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		linalg.EigenSym(m)
	}
}

func BenchmarkDequeOwnerOps(b *testing.B) {
	var d deque.Deque
	for i := 0; i < b.N; i++ {
		d.Push(i)
		d.Pop()
	}
}

func BenchmarkDequeStealHalf(b *testing.B) {
	var d deque.Deque
	ids := make([]int, 64)
	for i := 0; i < b.N; i++ {
		d.PushBatch(ids)
		for d.Len() > 0 {
			d.StealHalf()
		}
	}
}

func BenchmarkSemiMatchUnweighted(b *testing.B) {
	g := semimatching.Complete(512, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semimatching.SemiMatch(g)
	}
}

func BenchmarkWeightedSemiMatch(b *testing.B) {
	w := core.Synthetic(core.SyntheticOptions{NumTasks: 2000, Dist: "lognormal", Seed: 1})
	g := core.SemiMatchingLB{Seed: 1}.BuildGraphForBench(w, 32)
	est := make([]float64, len(w.Tasks))
	for i, t := range w.Tasks {
		est[i] = t.EstCost
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		semimatching.WeightedSemiMatch(g, est)
	}
}

func BenchmarkHypergraphPartition(b *testing.B) {
	w := core.Synthetic(core.SyntheticOptions{NumTasks: 2000, Dist: "lognormal", Seed: 1})
	h := core.BuildHypergraph(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hypergraph.Partition(h, 32, hypergraph.Options{Seed: 1})
	}
}

func BenchmarkSimWorkStealing(b *testing.B) {
	w := core.Synthetic(core.SyntheticOptions{NumTasks: 4096, Dist: "triangular", Seed: 1})
	m := cluster.New(cluster.Config{Ranks: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WorkStealing{Seed: int64(i)}.Run(w, m)
	}
}

func BenchmarkSimDynamicCounter(b *testing.B) {
	w := core.Synthetic(core.SyntheticOptions{NumTasks: 4096, Dist: "triangular", Seed: 1})
	m := cluster.New(cluster.Config{Ranks: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DynamicCounter{Chunk: 1}.Run(w, m)
	}
}

// Before/after pair for the worker scratch arena: the baseline path
// allocates its ERI block, Hermite tables and Boys workspace per
// quartet; the arena path reuses one scratch across the whole sweep.
func BenchmarkExecuteTaskBaseline(b *testing.B) {
	_, bs := waterBasis(b, 1, "sto-3g")
	w := chem.BuildFockWorkload(bs, 1e-9, 4)
	d := linalg.Identity(bs.NBF)
	j := linalg.NewMatrix(bs.NBF, bs.NBF)
	k := linalg.NewMatrix(bs.NBF, bs.NBF)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ExecuteTaskBaseline(&w.Tasks[i%len(w.Tasks)], d, j, k)
	}
}

func BenchmarkExecuteTaskArena(b *testing.B) {
	_, bs := waterBasis(b, 1, "sto-3g")
	w := chem.BuildFockWorkload(bs, 1e-9, 4)
	d := linalg.Identity(bs.NBF)
	j := linalg.NewMatrix(bs.NBF, bs.NBF)
	k := linalg.NewMatrix(bs.NBF, bs.NBF)
	scratch := w.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.ExecuteTaskScratch(&w.Tasks[i%len(w.Tasks)], d, j, k, scratch)
	}
}

func BenchmarkWallStealingFock(b *testing.B) {
	mol, bs := waterBasis(b, 2, "sto-3g")
	w := chem.BuildFockWorkload(bs, 1e-9, 4)
	h := chem.CoreHamiltonian(bs, mol)
	d := linalg.Identity(bs.NBF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.WallStealing(w, h, d, 4, int64(i))
	}
}

func init() {
	// Ensure the experiment registry and benchmark list stay in sync: a
	// new experiment without a benchmark is a packaging bug.
	want := map[string]bool{}
	for _, id := range bench.Experiments() {
		want[id] = true
	}
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "W1", "W3"} {
		if !want[id] {
			panic(fmt.Sprintf("bench_test: experiment %s missing from registry", id))
		}
		delete(want, id)
	}
	if len(want) > 0 {
		panic(fmt.Sprintf("bench_test: experiments lack benchmarks: %v", want))
	}
}
