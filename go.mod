module execmodels

go 1.22
