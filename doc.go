// Package execmodels is a reproduction of "On the Impact of Execution
// Models: A Case Study in Computational Chemistry" (Chavarría-Miranda,
// Halappanavar, Krishnamoorthy, Manzano, Vishnu, Hoisie; IPDPSW 2015).
//
// The library lives in internal/: a Hartree–Fock chemistry kernel whose
// blocked two-electron tasks form the irregular workload (internal/chem),
// a simulated HPC platform (internal/cluster, internal/ga), the execution
// models under study (internal/core), and the load-balancing algorithms —
// optimal/weighted semi-matching (internal/semimatching) and multilevel
// hypergraph partitioning (internal/hypergraph). internal/bench
// regenerates every table and figure of the evaluation; see DESIGN.md and
// EXPERIMENTS.md.
package execmodels
