// partition compares the load-balancing algorithms head to head on a
// workload: semi-matching (cheap) versus multilevel hypergraph
// partitioning (expensive) versus plain LPT, reporting load balance,
// communication cut and the real cost of computing each assignment.
//
// Usage:
//
//	partition -tasks 8000 -parts 64
//	partition -tasks 2000 -parts 16 -dist triangular
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"execmodels/internal/core"
	"execmodels/internal/hypergraph"
	"execmodels/internal/semimatching"
	"execmodels/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("partition: ")
	var (
		tasks    = flag.Int("tasks", 4000, "number of tasks")
		parts    = flag.Int("parts", 32, "number of parts (ranks)")
		dist     = flag.String("dist", "lognormal", "cost distribution: uniform | lognormal | bimodal | triangular")
		sigma    = flag.Float64("sigma", 1.0, "lognormal shape")
		seed     = flag.Int64("seed", 1, "workload seed")
		workload = flag.String("workload", "", "load a workload JSON (e.g. from benchsuite -dump) instead of synthesizing")
	)
	flag.Parse()

	var w *core.Workload
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			log.Fatal(err)
		}
		w, err = core.ReadWorkload(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		w = core.Synthetic(core.SyntheticOptions{
			NumTasks: *tasks, Dist: *dist, Sigma: *sigma, Seed: *seed,
		})
	}
	est := make([]float64, len(w.Tasks))
	for i, t := range w.Tasks {
		est[i] = t.EstCost
	}
	fmt.Printf("workload: %d tasks, %d blocks, cost max/mean %.2f; %d parts\n\n",
		len(w.Tasks), w.NumBlocks, w.CostImbalance(), *parts)
	fmt.Printf("%-15s %-12s %-12s %-14s %-12s\n",
		"algorithm", "imbalance", "gini", "cut(bytes)", "cost")

	h := core.BuildHypergraph(w)
	report := func(name string, assign []int, elapsed time.Duration) {
		loads := make([]float64, *parts)
		for i, p := range assign {
			loads[p] += w.Tasks[i].Cost
		}
		fmt.Printf("%-15s %-12.4f %-12.4f %-14.4g %-12v\n",
			name,
			stats.LoadImbalance(loads),
			stats.Gini(loads),
			hypergraph.ConnectivityCut(h, assign, *parts),
			elapsed.Round(time.Microsecond))
	}

	g := core.SemiMatchingLB{Seed: *seed}.BuildGraphForBench(w, *parts)

	start := time.Now()
	lpt := semimatching.LPT(g, est)
	report("lpt", lpt.Of, time.Since(start))

	start = time.Now()
	sm := semimatching.WeightedSemiMatch(g, est)
	report("semi-matching", sm.Of, time.Since(start))

	start = time.Now()
	hg := hypergraph.Partition(h, *parts, hypergraph.Options{Seed: *seed})
	report("hypergraph", hg.Part, time.Since(start))

	fmt.Println("\nsemi-matching should match hypergraph balance at a fraction of the cost;")
	fmt.Println("hypergraph wins on the communication cut, which is what it optimizes.")
}
