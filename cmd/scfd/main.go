// Command scfd is the multi-tenant SCF job server: an HTTP daemon that
// admits JSON job specs, schedules them through a per-tenant weighted
// fair queue onto a bounded worker pool running the wall-clock Fock
// backend, checkpoints every committed iteration into a spool directory,
// and — killed or gracefully drained — resumes incomplete jobs from that
// spool on the next start.
//
// Usage:
//
//	scfd -addr :8080 -spool ./spool -workers 4
//	scfd -spool ./spool -weights acme=3,guest=1 -max-depth 256
//
// SIGINT/SIGTERM triggers a graceful drain: running jobs stop at their
// next iteration boundary (checkpoint already on disk), queued jobs stay
// in the spool, and the process exits cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"execmodels/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		spool       = flag.String("spool", "spool", "checkpoint/restart spool directory")
		workers     = flag.Int("workers", 0, "job worker pool size (0 = GOMAXPROCS)")
		mode        = flag.String("mode", "", "Fock executor per job: serial|static|dynamic|stealing (default serial unless -fock-workers > 1)")
		sched       = flag.String("sched", "", "scheduler-seam balancing policy per job (overrides -mode): static|cyclic|dynamic|stealing|lpt|semimatching|hypergraph|persistence|persistence-sm|persistence-feedback")
		fockWorkers = flag.Int("fock-workers", 1, "intra-job Fock-build workers")
		dynBlock    = flag.Int("dyn-block", 4, "dynamic-mode fetch block")
		seed        = flag.Int64("seed", 1, "stealing-mode seed")
		maxDepth    = flag.Int("max-depth", 512, "admission bound on queued jobs (-1 disables)")
		maxFlops    = flag.Float64("max-queued-flops", 1e9, "admission bound on queued work, NBF^4 units (-1 disables)")
		weightSpec  = flag.String("weights", "", "tenant fair-share weights, e.g. acme=3,guest=1")
		ckptEvery   = flag.Int("checkpoint-every", 1, "checkpoint every k-th SCF iteration")
		maxIter     = flag.Int("default-max-iter", 100, "SCF iteration cap for specs that leave maxIter unset")
	)
	flag.Parse()

	weights, err := parseWeights(*weightSpec)
	if err != nil {
		log.Fatalf("scfd: %v", err)
	}
	s, err := serve.New(serve.Config{
		Workers:         *workers,
		Mode:            *mode,
		Sched:           *sched,
		FockWorkers:     *fockWorkers,
		DynBlock:        *dynBlock,
		Seed:            *seed,
		SpoolDir:        *spool,
		MaxDepth:        *maxDepth,
		MaxQueuedFlops:  *maxFlops,
		TenantWeights:   weights,
		CheckpointEvery: *ckptEvery,
		DefaultMaxIter:  *maxIter,
	})
	if err != nil {
		log.Fatalf("scfd: %v", err)
	}
	s.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("scfd: serving on %s (spool %s, %d recovered)", *addr, *spool, s.Recovered())

	select {
	case err := <-errc:
		log.Fatalf("scfd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("scfd: draining (running jobs stop at the next checkpointed iteration)")
	s.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("scfd: http shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("scfd: %v", err)
	}
	log.Printf("scfd: drained cleanly")
	os.Exit(0)
}

// parseWeights parses "tenant=weight,tenant=weight".
func parseWeights(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad weight %q (want tenant=weight)", part)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad weight %q: must be a positive number", part)
		}
		out[name] = w
	}
	return out, nil
}
