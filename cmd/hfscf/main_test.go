package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseMoleculeVariants(t *testing.T) {
	cases := []struct {
		spec  string
		atoms int
	}{
		{"water", 3},
		{"h2", 2},
		{"waters:2", 6},
		{"alkane:3", 11}, // C3H8
		{"random:5", 5},
	}
	for _, c := range cases {
		mol, err := parseMolecule(c.spec, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(mol.Atoms) != c.atoms {
			t.Errorf("%s: %d atoms, want %d", c.spec, len(mol.Atoms), c.atoms)
		}
	}
}

func TestParseMoleculeErrors(t *testing.T) {
	for _, spec := range []string{
		"unknown", "waters", "waters:0", "waters:x", "alkane", "random", "xyz", "xyz:/no/such/file.xyz",
	} {
		if _, err := parseMolecule(spec, 1); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
}

func TestParseMoleculeXYZ(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.xyz")
	content := "3\ntest water\nO 0 0 0\nH 0.76 0 0.59\nH -0.76 0 0.59\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	mol, err := parseMolecule("xyz:"+path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mol.Atoms) != 3 || mol.Name != "test water" {
		t.Fatalf("parsed %+v", mol)
	}
}
