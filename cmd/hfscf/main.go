// hfscf runs a restricted Hartree–Fock calculation end to end, with the
// Fock build executed serially or under one of the wall-clock parallel
// execution models.
//
// Usage:
//
//	hfscf -molecule water -basis sto-3g
//	hfscf -molecule waters:8 -mode stealing -workers 8
//	hfscf -molecule alkane:6 -basis 6-31g -mode dynamic
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"execmodels/internal/chem"
	"execmodels/internal/core"
	"execmodels/internal/linalg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hfscf: ")
	var (
		molecule  = flag.String("molecule", "water", "water | h2 | waters:N | alkane:N | random:N | xyz:FILE")
		basis     = flag.String("basis", "sto-3g", "basis set: sto-3g, 6-31g or 6-31g*")
		mode      = flag.String("mode", "serial", "fock build: serial | static | dynamic | stealing")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "workers for parallel modes")
		maxIter   = flag.Int("maxiter", 50, "maximum SCF iterations")
		screen    = flag.Float64("screen", 1e-10, "Schwarz screening threshold")
		block     = flag.Int("block", 4, "bra-pair block size for the Fock workload")
		pairblock = flag.Int("pairblock", 0, "re-block parallel tasks to this many bra pairs (0 = keep -block; screening data is shared, so re-blocking is cheap)")
		orbitals  = flag.Bool("orbitals", false, "print orbital energies")
		seed      = flag.Int64("seed", 7, "seed for generated geometries and the work-stealing scheduler")
		dynblock  = flag.Int("dynblock", 1, "tasks fetched per shared-counter op in -mode dynamic")
		diis      = flag.Bool("diis", true, "DIIS convergence acceleration")
		mp2       = flag.Bool("mp2", false, "add the MP2 correlation energy (small systems only)")
		props     = flag.Bool("properties", false, "print dipole moment and Mulliken charges")
		uhf       = flag.Bool("uhf", false, "unrestricted Hartree-Fock")
		mult      = flag.Int("multiplicity", 0, "spin multiplicity 2S+1 for -uhf (0 = lowest)")
		charge    = flag.Int("charge", 0, "net molecular charge")
		nosym     = flag.Bool("nosym", false, "disable 8-fold symmetry folding and Schwarz screening: every Fock build runs the naive N^4 quadruple loop (ground-truth escape hatch; serial RHF only, ~8x+ slower)")
	)
	flag.Parse()

	mol, err := parseMolecule(*molecule, *seed)
	if err != nil {
		log.Fatal(err)
	}
	mol.Charge = *charge
	bs, err := chem.NewBasis(*basis, mol)
	if err != nil {
		log.Fatal(err)
	}
	wallOpts := core.WallOptions{Seed: *seed, Block: *dynblock, PairBlock: *pairblock}

	if *nosym && (*mode != "serial" || *uhf) {
		log.Fatal("-nosym is the serial restricted ground-truth path; it cannot combine with -mode or -uhf")
	}

	if *uhf {
		runUHF(mol, bs, *mult, *maxIter, *screen, *block, *mode, *workers, wallOpts)
		return
	}

	var builder chem.FockBuilder
	if *mode != "serial" {
		builder, err = core.ParallelFockBuilder(*mode, *workers, wallOpts)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *nosym {
		builder = func(fw *chem.FockWorkload, h, d *linalg.Matrix) *linalg.Matrix {
			return chem.BuildFockNaive(fw.Basis, h, d)
		}
	}

	fmt.Printf("molecule  %s (%d atoms, %d electrons)\n", mol.Name, len(mol.Atoms), mol.NumElectrons())
	fmt.Printf("basis     %s (%d shells, %d functions)\n", bs.Name, len(bs.Shells), bs.NBF)
	fmt.Printf("fock mode %s", fockModeName(*mode, *nosym))
	if *mode != "serial" {
		fmt.Printf(" (%d workers)", *workers)
	}
	fmt.Println()

	start := time.Now()
	res, err := chem.RunSCF(mol, bs, chem.SCFOptions{
		MaxIter:   *maxIter,
		Screening: *screen,
		BlockSize: *block,
		UseDIIS:   *diis,
	}, builder)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\ntasks     %d (cost max/mean %.2f)\n",
		len(res.Workload.Tasks), res.Workload.CostImbalance())
	printQuartetStats(res.Workload, *nosym)
	if !res.Converged {
		fmt.Printf("WARNING   not converged after %d iterations\n", res.Iterations)
	} else {
		fmt.Printf("converged in %d iterations (%v)\n", res.Iterations, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("E(nuc)    %+.8f hartree\n", res.Nuclear)
	fmt.Printf("E(elec)   %+.8f hartree\n", res.Electronic)
	fmt.Printf("E(total)  %+.8f hartree\n", res.Energy)
	if *orbitals {
		fmt.Println("\norbital energies (hartree):")
		nocc := mol.NumElectrons() / 2
		for i, e := range res.OrbitalE {
			occ := " "
			if i < nocc {
				occ = "*"
			}
			fmt.Printf("  %3d %s %+.6f\n", i+1, occ, e)
		}
	}
	if *props && res.Converged {
		mu := chem.DipoleMoment(mol, bs, res.D)
		fmt.Printf("\ndipole    (%+.4f, %+.4f, %+.4f) a.u., |mu| = %.4f a.u. = %.4f D\n",
			mu.X, mu.Y, mu.Z, mu.Norm(), mu.Norm()*2.541746)
		s := chem.Overlap(bs)
		q := chem.MullikenCharges(mol, bs, res.D, s)
		fmt.Println("mulliken charges:")
		for i, a := range mol.Atoms {
			fmt.Printf("  %-3s %+.4f\n", a.Symbol(), q[i])
		}
	}
	if *mp2 && res.Converged {
		e2, err := chem.MP2Energy(bs, res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("E(MP2)    %+.8f hartree\n", e2)
		fmt.Printf("E(tot+2)  %+.8f hartree\n", res.Energy+e2)
	}
	if !res.Converged {
		os.Exit(1)
	}
}

func fockModeName(mode string, nosym bool) string {
	if nosym {
		return "serial (naive N^4, no symmetry/screening)"
	}
	return mode
}

// printQuartetStats reports how much work the 8-fold symmetry folding and
// Schwarz screening removed before any task reached an executor.
func printQuartetStats(w *chem.FockWorkload, nosym bool) {
	st := w.Stats()
	if nosym {
		fmt.Printf("quartets  %d ordered (naive loop computes all of them)\n", st.NaiveQuartets)
		return
	}
	fold := float64(st.NaiveQuartets) / float64(st.UniqueQuartets)
	fmt.Printf("quartets  %d unique of %d ordered (%.2fx symmetry fold), %d surviving screening\n",
		st.UniqueQuartets, st.NaiveQuartets, fold, st.Surviving)
}

// runUHF drives the unrestricted branch of the tool.
func runUHF(mol *chem.Molecule, bs *chem.BasisSet, mult, maxIter int, screen float64, block int,
	mode string, workers int, wallOpts core.WallOptions) {
	opts := chem.UHFOptions{
		Multiplicity: mult,
		MaxIter:      maxIter,
		Screening:    screen,
		BlockSize:    block,
	}
	if mode != "serial" {
		builder, err := core.ParallelUHFFockBuilder(mode, workers, wallOpts)
		if err != nil {
			log.Fatal(err)
		}
		opts.Builder = builder
	}
	fmt.Printf("fock mode %s", mode)
	if mode != "serial" {
		fmt.Printf(" (%d workers)", workers)
	}
	fmt.Println()
	start := time.Now()
	res, err := chem.RunUHF(mol, bs, opts)
	if err != nil {
		log.Fatal(err)
	}
	printQuartetStats(res.Workload, false)
	if !res.Converged {
		fmt.Printf("WARNING   not converged after %d iterations\n", res.Iterations)
	} else {
		fmt.Printf("converged in %d iterations (%v)\n", res.Iterations,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("occupation %dα / %dβ\n", res.NAlpha, res.NBeta)
	fmt.Printf("E(total)  %+.8f hartree\n", res.Energy)
	fmt.Printf("<S²>      %.4f\n", res.S2)
	if !res.Converged {
		os.Exit(1)
	}
}

func parseMolecule(spec string, seed int64) (*chem.Molecule, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	n := 0
	switch name {
	case "waters", "alkane", "random":
		if hasArg {
			var err error
			n, err = strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad molecule count in %q", spec)
			}
		}
	}
	switch name {
	case "water":
		return chem.Water(), nil
	case "h2":
		return chem.H2(1.4), nil
	case "waters":
		if !hasArg {
			return nil, fmt.Errorf("waters needs a count, e.g. waters:4")
		}
		return chem.WaterCluster(n, seed), nil
	case "alkane":
		if !hasArg {
			return nil, fmt.Errorf("alkane needs a count, e.g. alkane:6")
		}
		return chem.Alkane(n), nil
	case "random":
		if !hasArg {
			return nil, fmt.Errorf("random needs a count, e.g. random:20")
		}
		return chem.RandomCluster(n, []int{1, 8}, seed), nil
	case "xyz":
		if arg == "" {
			return nil, fmt.Errorf("xyz needs a path, e.g. xyz:geom.xyz")
		}
		f, err := os.Open(arg)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return chem.ParseXYZ(f)
	default:
		return nil, fmt.Errorf("unknown molecule %q", spec)
	}
}
