// Command execlint runs the repository's static-analysis suite: the
// syntactic determinism, guardedby, lockbalance and floateq checks, the
// interprocedural clocktaint, maporder and lockset checks built on the
// internal/lint/dataflow summary engine, the hot-path proofs —
// allocfree (//hotpath:allocfree call chains must not allocate), goleak
// (every go statement needs a completion edge) and padcheck
// (//hotpath:padded structs stay cache-line aligned) — and the static
// race-freedom proofs: shareiso (//hotpath:isolated state is written
// only by its owning goroutine, cross-goroutine reads need a proven
// happens-before edge), atomicdiscipline (a word accessed via
// sync/atomic anywhere is accessed atomically everywhere; typed atomics
// are never copied) and ctxcancel (blocking operations on HTTP request
// paths select on ctx.Done() or a deadline). See internal/lint.
//
// Usage:
//
//	execlint [-json] [-analyzer allocfree,goleak,...] [-stale-suppressions] [packages]
//
// Package patterns are directories relative to the working directory,
// with "./..." expanding recursively (default).
//
// Exit status:
//
//	0  no findings survived //lint:ignore suppression
//	1  findings were reported
//	2  usage error, unknown analyzer name, or package load failure
//
// With -json each finding is one NDJSON line (check, position, message,
// and the source→call-chain→sink taint path for interprocedural
// findings), ordered deterministically — two runs over the same tree are
// byte-identical. Per-line suppression, reason mandatory:
//
//	//lint:ignore <check> <reason>
//
// With -stale-suppressions, directives that suppressed nothing during
// the run are additionally reported as "staleignore" findings — dead
// suppressions would otherwise hide the next real finding on their line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"execmodels/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("execlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit one NDJSON finding per line (check, position, message, taint path)")
	analyzer := fs.String("analyzer", "", "comma-separated subset of analyzers to run (default: all; see -list)")
	checks := fs.String("checks", "", "alias for -analyzer (kept for compatibility)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	stale := fs.Bool("stale-suppressions", false, "also report //lint:ignore directives that no longer suppress any finding")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: execlint [-json] [-analyzer name,...] [-stale-suppressions] [packages]\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nexit status: 0 no findings, 1 findings reported, 2 usage/load error\n")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	selection := *analyzer
	if selection == "" {
		selection = *checks
	}
	if selection != "" {
		// Validate every requested name up front (the way benchsuite
		// validates -exp IDs): report all unknown names at once with the
		// valid vocabulary, rather than failing on the first.
		byName := map[string]lint.Analyzer{}
		valid := make([]string, 0, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name()] = a
			valid = append(valid, a.Name())
		}
		sort.Strings(valid)
		var picked []lint.Analyzer
		var unknown []string
		for _, name := range strings.Split(selection, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if a, ok := byName[name]; ok {
				picked = append(picked, a)
			} else {
				unknown = append(unknown, name)
			}
		}
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "execlint: unknown analyzer(s): %s\nvalid analyzers: %s\n",
				strings.Join(unknown, ", "), strings.Join(valid, ", "))
			return 2
		}
		if len(picked) == 0 {
			fmt.Fprintf(stderr, "execlint: -analyzer selected nothing; valid analyzers: %s\n", strings.Join(valid, ", "))
			return 2
		}
		analyzers = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	if *stale {
		var staleFindings []lint.Finding
		findings, staleFindings = lint.RunWithStale(pkgs, analyzers)
		findings = append(findings, staleFindings...)
		lint.SortFindings(findings)
	} else {
		findings = lint.Run(pkgs, analyzers)
	}

	if *jsonOut {
		type jsonStep struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Desc string `json:"desc"`
		}
		type jsonFinding struct {
			File    string     `json:"file"`
			Line    int        `json:"line"`
			Column  int        `json:"column"`
			Check   string     `json:"check"`
			Message string     `json:"message"`
			Path    []jsonStep `json:"path,omitempty"`
		}
		enc := json.NewEncoder(stdout) // one finding per line: NDJSON
		for _, f := range findings {
			jf := jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Check:   f.Check,
				Message: f.Message,
			}
			for _, s := range f.Path {
				jf.Path = append(jf.Path, jsonStep{File: s.Pos.Filename, Line: s.Pos.Line, Desc: s.Desc})
			}
			if err := enc.Encode(jf); err != nil {
				fmt.Fprintf(stderr, "execlint: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "execlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
