// Command execlint runs the repository's static-analysis suite: the
// determinism, guardedby, lockbalance and floateq checks that keep the
// execution-model comparison reproducible and its concurrency honest
// (see internal/lint).
//
// Usage:
//
//	execlint [-json] [-checks determinism,guardedby,...] [packages]
//
// Package patterns are directories relative to the working directory,
// with "./..." expanding recursively (default). Exit status is 0 when no
// findings survive suppression, 1 when findings are reported, 2 on usage
// or load errors.
//
// Per-line suppression, reason mandatory:
//
//	//lint:ignore <check> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"execmodels/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("execlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	checks := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *checks != "" {
		byName := map[string]lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "execlint: unknown check %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fmt.Fprintf(stderr, "execlint: %v\n", err)
		return 2
	}

	findings := lint.Run(pkgs, analyzers)

	if *jsonOut {
		type jsonFinding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Check   string `json:"check"`
			Message string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Check:   f.Check,
				Message: f.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "execlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "execlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
