// benchsuite regenerates the evaluation's tables and figures (see
// DESIGN.md's per-experiment index).
//
// Usage:
//
//	benchsuite -list
//	benchsuite -exp F2
//	benchsuite -exp all -scale paper
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"execmodels/internal/bench"
	"execmodels/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchsuite: ")
	var (
		exp       = flag.String("exp", "all", "experiment ID (F1..F9, T1..T9, A1..A8, W1), comma list, or 'all'")
		scale     = flag.String("scale", "small", "workload scale: small | paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
		list      = flag.Bool("list", false, "list available experiments and exit")
		gantt     = flag.String("gantt", "", "render an execution timeline for the given model (e.g. work-stealing) instead of running experiments")
		ranks     = flag.Int("ranks", 8, "rank count for -gantt and -metrics")
		asCSV     = flag.Bool("csv", false, "emit CSV instead of aligned text tables")
		chromeOut = flag.String("chrome", "", "with -gantt: write a Chrome trace-event JSON to this file instead of text")
		dump      = flag.String("dump", "", "write the suite's chemistry workload as JSON to this file and exit")
		svgDir    = flag.String("svg", "", "render the figure experiments (F2-F7) as SVG charts into this directory and exit")
		metrics   = flag.String("metrics", "", "run every model at -ranks and write OpenMetrics dumps, JSON summaries and blame tables into this directory, then exit")
		wallOut   = flag.String("wall", "", "run the wall-clock Fock benchmark and write its JSON report (BENCH_wall.json) to this file, then exit")
		wallCap   = flag.Int("wall-workers", 0, "with -wall: cap the worker sweep at this count (0 = full sweep; CI smoke uses 2)")
		wallSched = flag.String("wall-sched", "semimatching,hypergraph,persistence-feedback",
			"with -wall: comma list of scheduler-seam policies measured as extra rows; persistence-feedback enables the W3 feedback section; empty = legacy modes only")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, id := range bench.Experiments() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	s := bench.NewSuite(*scale, *seed)
	s.MaxWorkers = *wallCap
	for _, p := range strings.Split(*wallSched, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		// Fail fast on a typo before any benchmark time is spent.
		if _, err := core.SchedulerByName(p, core.SchedOptions{}); err != nil {
			log.Fatalf("-wall-sched: %v (valid: %s)", err, strings.Join(core.SchedulerNames(), " "))
		}
		s.WallScheds = append(s.WallScheds, p)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := core.WriteWorkload(f, s.Workload()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s-scale chemistry workload to %s\n", *scale, *dump)
		return
	}
	if *wallOut != "" {
		f, err := os.Create(*wallOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := s.WriteWallBench(f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s-scale wall-clock benchmark report to %s\n", *scale, *wallOut)
		return
	}
	if *metrics != "" {
		if err := s.WriteMetrics(*metrics, *ranks); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote per-model metrics, summaries and blame tables to %s (P=%d)\n", *metrics, *ranks)
		return
	}
	if *svgDir != "" {
		files, err := s.FigureSVGs(*svgDir)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range files {
			fmt.Println("wrote", f)
		}
		return
	}
	if *gantt != "" {
		if *chromeOut != "" {
			f, err := os.Create(*chromeOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := s.ChromeTrace(f, *gantt, *ranks); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote Chrome trace for %s to %s (open in chrome://tracing)\n", *gantt, *chromeOut)
			return
		}
		out, err := s.Gantt(*gantt, *ranks, 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	var ids []string
	if *exp == "all" {
		ids = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
		// Validate the whole list before running anything: a typo late in
		// the list must not surface only after minutes of earlier
		// experiments have already run.
		var unknown []string
		for _, id := range ids {
			if !bench.Known(id) {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			log.Fatalf("unknown experiment(s) %s; valid IDs: %s",
				strings.Join(unknown, ", "), strings.Join(bench.Experiments(), " "))
		}
	}
	for _, id := range ids {
		t, err := s.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		if *asCSV {
			if err := t.FprintCSV(os.Stdout); err != nil {
				log.Fatal(err)
			}
		} else {
			t.Fprint(os.Stdout)
		}
	}
}
