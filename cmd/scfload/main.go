// Command scfload is the load generator for scfd: it hammers the job
// API with many concurrent clients submitting a heavy-tailed mix of
// water-cluster SCF jobs (size sweep × basis × charge) across several
// tenants, honors 429 Retry-After back-pressure, waits for every job's
// terminal state, and writes the latency/throughput/fairness report
// consumed as BENCH_serve.json.
//
// Usage:
//
//	scfload -addr http://127.0.0.1:8080 -clients 1000 -jobs 1500 -out BENCH_serve.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"execmodels/internal/bench"
)

// sizeClass is one point of the heavy-tailed job-size distribution.
type sizeClass struct {
	molecule string
	basis    string
	charge   int
}

// sizeClasses returns the job mix, ordered smallest to largest so a
// Zipf draw over the index is heavy-tailed toward cheap jobs with a
// long tail of expensive ones — the open-loop arrival pattern the fair
// queue and admission controller exist for.
func sizeClasses() []sizeClass {
	return []sizeClass{
		{"waters:1", "sto-3g", 0},
		{"waters:1", "sto-3g", 2},
		{"waters:2", "sto-3g", 0},
		{"waters:1", "6-31g", 0},
		{"waters:3", "sto-3g", 0},
		{"waters:2", "6-31g", 2},
		{"waters:4", "sto-3g", 0},
		{"waters:3", "6-31g", 0},
	}
}

type client struct {
	http    *http.Client
	base    string
	rng     *rand.Rand
	zipf    *rand.Zipf
	classes []sizeClass
	tenants []string
	poll    time.Duration
}

type submitResponse struct {
	ID      string  `json:"id"`
	EstCost float64 `json:"estCost"`
}

type jobStatus struct {
	State     string  `json:"state"`
	Energy    float64 `json:"energy"`
	Converged bool    `json:"converged"`
	Error     string  `json:"error"`
}

// runOne submits one job (retrying through 429 back-pressure) and waits
// for its terminal state.
func (c *client) runOne(jobNo int) (bench.ServeSample, error) {
	class := c.classes[c.zipf.Uint64()]
	tenant := c.tenants[jobNo%len(c.tenants)]
	spec := map[string]any{
		"tenant":   tenant,
		"molecule": class.molecule,
		"basis":    class.basis,
		"priority": c.rng.Intn(10),
		"seed":     int64(jobNo),
	}
	if class.charge != 0 {
		spec["charge"] = class.charge
	}
	body, _ := json.Marshal(spec)

	sample := bench.ServeSample{
		Tenant:   tenant,
		Molecule: class.molecule,
		Basis:    class.basis,
	}
	start := time.Now()

	var sub submitResponse
	for {
		resp, err := c.http.Post(c.base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return sample, err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			if err := json.Unmarshal(data, &sub); err != nil {
				return sample, fmt.Errorf("bad submit response: %w", err)
			}
		case http.StatusTooManyRequests:
			sample.Rejected++
			wait := 1
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = ra
			}
			// Honor the hint, desynchronized so rejected clients do not
			// return as a thundering herd.
			time.Sleep(time.Duration(wait)*time.Second + time.Duration(c.rng.Intn(250))*time.Millisecond)
			continue
		default:
			return sample, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
		}
		break
	}
	sample.SubmitSec = time.Since(start).Seconds()
	sample.EstCost = sub.EstCost

	for {
		st, err := c.status(sub.ID)
		if err != nil {
			return sample, err
		}
		if st.State == "done" || st.State == "failed" {
			sample.LatencySec = time.Since(start).Seconds()
			sample.Converged = st.Converged
			sample.Failed = st.State == "failed"
			return sample, nil
		}
		time.Sleep(c.poll + time.Duration(c.rng.Intn(int(c.poll))))
	}
}

func (c *client) status(id string) (*jobStatus, error) {
	resp, err := c.http.Get(c.base + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s: %s", id, resp.Status)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// serverWorkers asks /healthz for the server's worker-pool size (report
// metadata only; 0 when unavailable).
func serverWorkers(base string) int {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var h struct {
		Workers int `json:"workers"`
	}
	if json.NewDecoder(resp.Body).Decode(&h) != nil {
		return 0
	}
	return h.Workers
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "scfd base URL")
		clients    = flag.Int("clients", 1000, "concurrent client goroutines")
		jobs       = flag.Int("jobs", 1500, "total jobs to submit")
		out        = flag.String("out", "BENCH_serve.json", "report output path")
		seed       = flag.Int64("seed", 1, "load-mix seed")
		zipfS      = flag.Float64("zipf-s", 1.6, "Zipf exponent of the size distribution (larger = lighter tail)")
		poll       = flag.Duration("poll", 50*time.Millisecond, "status poll interval")
		tenantSpec = flag.String("tenants", "acme=3,blue=1,guest=1", "tenant=weight list; weights must match the server's -weights for a meaningful fairness index")
	)
	flag.Parse()

	weights := map[string]float64{}
	var tenants []string
	for _, part := range strings.Split(*tenantSpec, ",") {
		name, val, ok := strings.Cut(part, "=")
		w := 1.0
		if ok {
			parsed, err := strconv.ParseFloat(val, 64)
			if err != nil || parsed <= 0 {
				log.Fatalf("scfload: bad tenant weight %q", part)
			}
			w = parsed
		} else {
			name = part
		}
		tenants = append(tenants, name)
		weights[name] = w
	}
	if len(tenants) == 0 {
		log.Fatal("scfload: no tenants")
	}
	base := strings.TrimSuffix(*addr, "/")
	classes := sizeClasses()

	log.Printf("scfload: %d clients, %d jobs, %d size classes, tenants %v", *clients, *jobs, len(classes), tenants)
	workers := serverWorkers(base)

	var (
		next     atomic.Int64
		mu       sync.Mutex
		samples  []bench.ServeSample
		failures atomic.Int64
		wg       sync.WaitGroup
	)
	start := time.Now()
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			c := &client{
				http:    &http.Client{Timeout: 2 * time.Minute},
				base:    base,
				rng:     rng,
				zipf:    rand.NewZipf(rng, *zipfS, 1, uint64(len(classes)-1)),
				classes: classes,
				tenants: tenants,
				poll:    *poll,
			}
			for {
				n := next.Add(1)
				if n > int64(*jobs) {
					return
				}
				sample, err := c.runOne(int(n))
				if err != nil {
					failures.Add(1)
					log.Printf("scfload: job %d: %v", n, err)
					continue
				}
				mu.Lock()
				samples = append(samples, sample)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	duration := time.Since(start)

	rep := bench.BuildServeReport(samples, *clients, workers, duration.Seconds(), weights)
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("scfload: %v", err)
	}
	if err := bench.WriteServeReport(f, rep); err != nil {
		log.Fatalf("scfload: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("scfload: %v", err)
	}

	log.Printf("scfload: %d jobs in %.1fs (%.1f jobs/s), %d completed, %d failed, %d transport errors, %d rejections absorbed",
		rep.Jobs, rep.DurationSec, rep.JobsPerSec, rep.Completed, rep.Failed, failures.Load(), rep.Rejections)
	log.Printf("scfload: latency p50=%.0fms p95=%.0fms p99=%.0fms max=%.0fms",
		rep.Latency.P50Ms, rep.Latency.P95Ms, rep.Latency.P99Ms, rep.Latency.MaxMs)
	log.Printf("scfload: Jain fairness over weight-normalized served work: %.4f", rep.JainFairness)
	for _, t := range rep.Tenants {
		log.Printf("scfload:   tenant %-8s w=%.0f jobs=%-4d served=%.3g share/w=%.3g p95=%.0fms",
			t.Tenant, t.Weight, t.Jobs, t.ServedFlops, t.NormShare, t.Latency.P95Ms)
	}
	if rep.Failed > 0 || failures.Load() > 0 {
		os.Exit(1)
	}
}
